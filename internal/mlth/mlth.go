// Package mlth implements multilevel trie hashing (Section 2.5 of the
// paper): when the trie outgrows main memory it is split into a hierarchy
// of pages, each holding a subtrie of at most b' cells. Pages split when
// they overflow; the split node — the internal node best balancing the
// in-order node counts that has no logical parent within the page — moves
// to the parent page, its two pointers addressing the half pages. Because
// of the resulting high branching factor, two page levels suffice for very
// large files, so any key search costs two disk accesses once the root
// page is cached.
//
// Following the paper, the multilevel scheme is implemented for the basic
// method (one leaf per bucket, nil leaves allowed); extending it to THCL
// is the future work the paper's conclusion calls for.
package mlth

import (
	"errors"
	"fmt"
	"sync/atomic"

	"triehash/internal/bucket"
	"triehash/internal/format"
	"triehash/internal/keys"
	"triehash/internal/obs"
	"triehash/internal/store"
	"triehash/internal/trie"
)

// ErrNotFound is returned when a key is absent from the file.
var ErrNotFound = errors.New("mlth: key not found")

// Config parameterizes a multilevel trie-hashed file.
type Config struct {
	// Alphabet is the digit alphabet; the zero value selects keys.ASCII.
	Alphabet keys.Alphabet
	// Capacity is the bucket capacity b >= 2.
	Capacity int
	// PageCapacity is b': the number of cells a trie page holds.
	PageCapacity int
	// Mode selects the basic method (the paper's MLTH) or the
	// controlled-load variant (the extension its conclusion calls for).
	Mode trie.Mode
	// SplitPos is the split-key position m (0 = the middle INT(b/2+1)).
	SplitPos int
	// BoundPos is THCL's bounding-key position (0 = the last key);
	// SplitPos+1 pins ordered loads exactly. Ignored in basic mode.
	BoundPos int
	// SplitNodeFrac shifts the page split node for expected ordered
	// insertions (Section 3.2 / /ZEG88/): the target fraction of the
	// page's internal nodes preceding the split node. 0 selects 0.5.
	SplitNodeFrac float64
}

func (cfg Config) withDefaults() (Config, error) {
	if cfg.Alphabet == (keys.Alphabet{}) {
		cfg.Alphabet = keys.ASCII
	}
	if cfg.Capacity < 2 {
		return cfg, fmt.Errorf("mlth: bucket capacity %d; need at least 2", cfg.Capacity)
	}
	if cfg.PageCapacity < 3 {
		return cfg, fmt.Errorf("mlth: page capacity %d cells; need at least 3", cfg.PageCapacity)
	}
	if cfg.SplitPos == 0 {
		cfg.SplitPos = cfg.Capacity/2 + 1
	}
	if cfg.SplitPos < 1 || cfg.SplitPos > cfg.Capacity {
		return cfg, fmt.Errorf("mlth: split position %d outside [1, %d]", cfg.SplitPos, cfg.Capacity)
	}
	if cfg.BoundPos == 0 || cfg.Mode == trie.ModeBasic {
		cfg.BoundPos = cfg.Capacity + 1
	}
	if cfg.BoundPos <= cfg.SplitPos || cfg.BoundPos > cfg.Capacity+1 {
		return cfg, fmt.Errorf("mlth: bounding position %d outside (%d, %d]", cfg.BoundPos, cfg.SplitPos, cfg.Capacity+1)
	}
	if cfg.SplitNodeFrac == 0 {
		cfg.SplitNodeFrac = 0.5
	}
	if cfg.SplitNodeFrac <= 0 || cfg.SplitNodeFrac >= 1 {
		return cfg, fmt.Errorf("mlth: split node fraction %v outside (0, 1)", cfg.SplitNodeFrac)
	}
	return cfg, nil
}

// page is one node of the page hierarchy: a subtrie whose leaves address
// either buckets (level 0, the file level) or pages of the level below.
type page struct {
	level int
	tr    *trie.Trie
}

// File is a multilevel trie-hashed file.
type File struct {
	cfg   Config
	st    store.Store
	pages []*page
	root  int32
	nkeys int
	// splits counts bucket splits, pageSplits page splits.
	splits     int
	pageSplits int
	// pageReads counts page accesses beyond the root (which stays in
	// main memory, as the paper assumes); bucket transfers are counted
	// by the store. Atomic so concurrent readers can count.
	pageReads atomic.Int64
	// hook carries structural events to an attached observer (nil = off).
	hook *obs.Hook
	// fmtv is the on-disk encoding version SaveMeta writes (0 =
	// format.Default); pages it reads may be either version.
	fmtv format.Version
}

// SetObsHook attaches the observability hook structural events go to.
func (f *File) SetObsHook(h *obs.Hook) { f.hook = h }

// emit sends a structural event stamped with the cheap state figures; a
// no-op (one atomic load) with no observer attached.
func (f *File) emit(t obs.EventType, addr, addr2 int32, detail string) {
	o := f.hook.Observer()
	if o == nil {
		return
	}
	o.Emit(obs.Event{
		Type: t, Addr: addr, Addr2: addr2, Detail: detail,
		Keys: f.nkeys, Buckets: f.st.Buckets(), TrieCells: len(f.pages),
	})
}

// pageRead counts a non-root page access with the observer; the event is
// high-frequency, so the observer ring-buffers it only under TraceIO.
func (f *File) pageRead(pid int32) {
	o := f.hook.Observer()
	if o == nil {
		return
	}
	o.Emit(obs.Event{Type: obs.EvPageRead, Addr: pid})
}

// New creates a fresh multilevel file over an empty store.
func New(cfg Config, st store.Store) (*File, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if st.Buckets() != 0 {
		return nil, fmt.Errorf("mlth: store already holds %d buckets", st.Buckets())
	}
	if _, err := st.Alloc(); err != nil {
		return nil, err
	}
	f := &File{cfg: cfg, st: st}
	f.pages = append(f.pages, &page{level: 0, tr: trie.New(cfg.Alphabet, 0)})
	return f, nil
}

// Levels returns the number of page levels (1 = the trie fits one page).
func (f *File) Levels() int { return f.pages[f.root].level + 1 }

// Pages returns the number of trie pages.
func (f *File) Pages() int { return len(f.pages) }

// Len returns the number of records.
func (f *File) Len() int { return f.nkeys }

// Splits returns the number of bucket splits.
func (f *File) Splits() int { return f.splits }

// PageSplits returns the number of page splits.
func (f *File) PageSplits() int { return f.pageSplits }

// PageReads returns the accumulated non-root page accesses.
func (f *File) PageReads() int64 { return f.pageReads.Load() }

// ResetPageReads zeroes the page access counter.
func (f *File) ResetPageReads() { f.pageReads.Store(0) }

// ResetCounters zeroes the file's cumulative event counters — bucket
// splits, page splits and page reads — and the store's access counters,
// so a measured phase starts from zero across every counter family.
// State figures (Keys, Pages, Levels) are gauges and are not touched.
func (f *File) ResetCounters() {
	f.splits, f.pageSplits = 0, 0
	f.pageReads.Store(0)
	f.st.ResetCounters()
}

// Store exposes the bucket store for access accounting.
func (f *File) Store() store.Store { return f.st }

// Alphabet returns the digit alphabet the file was created with.
func (f *File) Alphabet() keys.Alphabet { return f.cfg.Alphabet }

// Capacity returns the bucket capacity b.
func (f *File) Capacity() int { return f.cfg.Capacity }

// locate runs the multi-level key search: Algorithm A1 continues from page
// to page, carrying the digit index j and the logical path C across
// levels. It returns the visited page ids (root first) and the search
// result within the file-level page, whose Path is the full logical path.
func (f *File) locate(key string) (path []int32, res trie.SearchResult) {
	pid := f.root
	j := 0
	var C []byte
	for {
		p := f.pages[pid]
		if pid != f.root {
			f.pageReads.Add(1)
			f.pageRead(pid)
		}
		path = append(path, pid)
		res = p.tr.SearchFrom(key, j, C)
		if p.level == 0 {
			return path, res
		}
		if res.Leaf.IsNil() {
			panic(fmt.Sprintf("mlth: nil leaf at page level %d", p.level))
		}
		pid = res.Leaf.Addr()
		j, C = res.J, res.Path
	}
}

// Get returns the value stored under key.
func (f *File) Get(key string) ([]byte, error) {
	if err := f.cfg.Alphabet.Validate(key); err != nil {
		return nil, err
	}
	_, res := f.locate(key)
	if res.Leaf.IsNil() {
		return nil, ErrNotFound
	}
	b, err := f.st.Read(res.Leaf.Addr())
	if err != nil {
		return nil, err
	}
	v, ok := b.Get(key)
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

// Put inserts or replaces the record for key and reports whether an
// existing record was replaced.
func (f *File) Put(key string, value []byte) (bool, error) {
	if err := f.cfg.Alphabet.Validate(key); err != nil {
		return false, err
	}
	path, res := f.locate(key)
	filePage := path[len(path)-1]
	if res.Leaf.IsNil() {
		addr, err := f.st.Alloc()
		if err != nil {
			return false, err
		}
		b := bucket.New(f.cfg.Capacity)
		b.SetBound(res.Path)
		b.Put(key, value)
		if err := f.st.Write(addr, b); err != nil {
			return false, err
		}
		f.pages[filePage].tr.AllocNil(res.Pos, addr)
		f.nkeys++
		return false, nil
	}
	addr := res.Leaf.Addr()
	b, err := f.st.Read(addr)
	if err != nil {
		return false, err
	}
	if b.Put(key, value) {
		return true, f.st.Write(addr, b)
	}
	if b.Len() <= f.cfg.Capacity {
		if err := f.st.Write(addr, b); err != nil {
			return false, err
		}
		f.nkeys++
		return false, nil
	}
	if f.cfg.Mode == trie.ModeTHCL {
		err = f.splitBucketTHCL(addr, b)
	} else {
		err = f.splitBucket(path, res, addr, b)
	}
	if err != nil {
		return false, err
	}
	f.nkeys++
	return false, nil
}

// Delete removes the record for key. The multilevel scheme leaves bucket
// merging to the single-level method (the paper studies deletions there);
// an emptied bucket's leaf simply becomes nil and the bucket is freed.
func (f *File) Delete(key string) error {
	if err := f.cfg.Alphabet.Validate(key); err != nil {
		return err
	}
	path, res := f.locate(key)
	if res.Leaf.IsNil() {
		return ErrNotFound
	}
	addr := res.Leaf.Addr()
	b, err := f.st.Read(addr)
	if err != nil {
		return err
	}
	if !b.Delete(key) {
		return ErrNotFound
	}
	if b.Len() == 0 && f.cfg.Mode == trie.ModeBasic && f.pages[path[len(path)-1]].tr.LeafCount(addr) == 1 {
		if err := f.st.Free(addr); err != nil {
			return err
		}
		f.pages[path[len(path)-1]].tr.FreeToNil(res.Pos)
		f.nkeys--
		return nil
	}
	if err := f.st.Write(addr, b); err != nil {
		return err
	}
	f.nkeys--
	return nil
}

// splitBucket performs the basic method's Algorithm A2 inside the file-
// level page that owns the leaf, then splits that page (and ancestors)
// if the expansion overflowed it.
func (f *File) splitBucket(path []int32, res trie.SearchResult, addr int32, b *bucket.Bucket) error {
	B := b.Keys()
	splitKey := B[f.cfg.SplitPos-1]
	boundKey := B[len(B)-1]
	s := f.cfg.Alphabet.SplitString(splitKey, boundKey)

	newAddr, err := f.st.Alloc()
	if err != nil {
		return err
	}
	filePage := path[len(path)-1]
	moved := b.SplitOff(func(k string) bool { return f.cfg.Alphabet.KeyLEBound(k, s) })
	nb := bucket.New(f.cfg.Capacity)
	// A multi-digit expansion interposes nil leaves, so the new bucket's
	// leaf bound is the split string less its last digit; a single-digit
	// expansion keeps the old bound (Algorithm A2 step 3).
	if cp := keys.CommonPrefixLen(s, b.Bound()); len(s)-cp > 1 {
		nb.SetBound(s[:len(s)-1])
	} else {
		nb.SetBound(b.Bound())
	}
	nb.Absorb(moved)
	b.SetBound(s)
	// New bucket first, old second, trie last (see core.appendSplit).
	if err := f.st.Write(newAddr, nb); err != nil {
		return err
	}
	if err := f.st.Write(addr, b); err != nil {
		return err
	}
	f.pages[filePage].tr.ExpandAt(res.Pos, res.Path, s, addr, newAddr, trie.ModeBasic)
	f.splits++
	f.emit(obs.EvSplit, addr, newAddr, fmt.Sprintf("split string %q", s))
	f.splitPagesUpward(path)
	return nil
}

// splitPagesUpward splits every page along the search path that exceeds
// the page capacity, bottom-up. A long expansion chain can overflow a
// page by several splits' worth; once a first split of an old root page
// has created a fresh root above it, the following splits of the same
// page must graft into that root instead of creating a rival one.
func (f *File) splitPagesUpward(path []int32) {
	for i := len(path) - 1; i >= 0; i-- {
		pid := path[i]
		for f.pages[pid].tr.Cells() > f.cfg.PageCapacity {
			var parent int32 = -1
			if i > 0 {
				parent = path[i-1]
			} else if pid != f.root {
				parent = f.root
			}
			f.splitPage(pid, parent)
		}
	}
	// Promotions may also have overflowed roots created above the
	// located path; keep splitting up the root chain.
	for {
		r := f.root
		if f.pages[r].tr.Cells() <= f.cfg.PageCapacity {
			return
		}
		f.splitPage(r, -1)
		for f.pages[r].tr.Cells() > f.cfg.PageCapacity {
			f.splitPage(r, f.root)
		}
	}
}

// splitPage performs the two phases of Section 2.5: choice of the split
// node r', then the in-order-preserving trie split. r' moves to the parent
// page (a fresh root page when pid is the root), pointing left at the old
// page and right at the new one.
func (f *File) splitPage(pid, parent int32) {
	p := f.pages[pid]
	r := p.tr.ChooseSplitNodeShifted(f.cfg.SplitNodeFrac)
	left, right, cell := p.tr.SplitAt(r)
	p.tr = left
	newID := int32(len(f.pages))
	f.pages = append(f.pages, &page{level: p.level, tr: right})
	f.pageSplits++
	f.emit(obs.EvPageSplit, pid, newID, fmt.Sprintf("level %d", p.level))

	if parent < 0 {
		// Root split: a new root page one level up holds just r'.
		lt := trie.New(f.cfg.Alphabet, pid)
		rt := trie.New(f.cfg.Alphabet, newID)
		rootTr := trie.Graft(cell, lt, rt)
		f.pages = append(f.pages, &page{level: p.level + 1, tr: rootTr})
		f.root = int32(len(f.pages) - 1)
		return
	}
	pos, ok := f.pages[parent].tr.FindLeafAddr(pid)
	if !ok {
		panic(fmt.Sprintf("mlth: page %d not referenced by parent %d", pid, parent))
	}
	f.pages[parent].tr.ReplaceLeafWithCell(pos, cell, trie.Leaf(pid), trie.Leaf(newID))
}

// Range calls fn for every record with from <= key <= to (empty to = no
// upper bound) in ascending key order until fn returns false.
func (f *File) Range(from, to string, fn func(key string, value []byte) bool) error {
	_, start := f.locate(from)
	started := start.Leaf.IsNil() // a nil start leaf: begin at the next real bucket
	startAddr := int32(-1)
	if !start.Leaf.IsNil() {
		startAddr = start.Leaf.Addr()
	}
	var scanErr error
	f.walkBuckets(func(addr int32) bool {
		if !started {
			if addr != startAddr {
				return true
			}
			started = true
		}
		b, err := f.st.Read(addr)
		if err != nil {
			scanErr = err
			return false
		}
		if b.Len() > 0 && to != "" && b.MinKey() > to {
			return false
		}
		return b.Ascend(from, to, func(r bucket.Record) bool { return fn(r.Key, r.Value) })
	})
	return scanErr
}

// walkBuckets visits every bucket address in ascending key order,
// descending the page hierarchy in-order and counting page accesses.
// Consecutive shared leaves of a THCL run report their bucket once.
func (f *File) walkBuckets(fn func(addr int32) bool) {
	last := int32(-1)
	var walk func(pid int32) bool
	walk = func(pid int32) bool {
		if pid != f.root {
			f.pageReads.Add(1)
			f.pageRead(pid)
		}
		p := f.pages[pid]
		cont := true
		for _, leaf := range p.tr.InorderLeafPtrs() {
			if leaf.IsNil() {
				last = -1
				continue
			}
			if p.level == 0 {
				if leaf.Addr() == last {
					continue
				}
				last = leaf.Addr()
				if !fn(leaf.Addr()) {
					cont = false
					break
				}
			} else if !walk(leaf.Addr()) {
				cont = false
				break
			}
		}
		return cont
	}
	walk(f.root)
}
