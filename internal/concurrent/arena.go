package concurrent

import (
	"fmt"
	"sync/atomic"

	"triehash/internal/keys"
	"triehash/internal/trie"
)

// Arena is the lock-free mirror of a trie's cell table that the
// store-backed concurrent engine searches without taking any lock. It is
// the /VID87/ data structure made concrete: an append-only table of cells
// whose tagged pointers are single atomic words, chunked so growth never
// moves a cell a reader may be looking at. The authoritative trie (owned
// by the structural writer) replays every mutation into the arena through
// the trie.Tracer hooks, preserving program order — in particular, a
// chain of fresh cells is fully wired before the one pointer flip that
// publishes it, so a reader either misses the chain entirely or sees it
// complete.
//
// Pointer words hold trie.Ptr values verbatim (leaf = bucket address,
// edge = -cell-1, nil = MinInt32), so no translation layer sits between
// the mirror and the authoritative trie.
const (
	arenaChunkShift = 10
	arenaChunkSize  = 1 << arenaChunkShift
	arenaMaxChunks  = 1 << 16 // capacity 2^26 cells; the table only grows
)

// arenaCell mirrors one trie cell. dv and dn are written once, before the
// cell becomes reachable; lp and rp are the atomically published tagged
// pointers.
type arenaCell struct {
	dv     byte
	dn     int32
	lp, rp atomic.Int32
}

// Arena is safe for any number of concurrent readers (Search) alongside
// one mutator (the tracer replay, serialized by the engine's structural
// lock).
type Arena struct {
	alpha  keys.Alphabet
	ncells atomic.Int32
	root   atomic.Int32
	chunks [arenaMaxChunks]atomic.Pointer[[arenaChunkSize]arenaCell]
}

// NewArena builds an arena mirroring t's current cells and root. The
// caller attaches the arena (usually via Mirror) as t's tracer afterwards
// so later mutations replay into it.
func NewArena(t *trie.Trie) *Arena {
	a := &Arena{alpha: t.Alphabet()}
	a.root.Store(int32(trie.Nil))
	n := int32(t.TableCells())
	for ci := int32(0); ci < n; ci++ {
		c := t.CellAt(ci)
		a.TraceAppendCell(ci, c.DV, c.DN)
		a.storePtr(trie.Pos{Cell: ci, Side: trie.SideLeft}, c.LP)
		a.storePtr(trie.Pos{Cell: ci, Side: trie.SideRight}, c.RP)
	}
	a.root.Store(int32(t.Root()))
	return a
}

// Cells returns the number of cells the arena holds.
func (a *Arena) Cells() int { return int(a.ncells.Load()) }

// Root returns the current root pointer.
func (a *Arena) Root() trie.Ptr { return trie.Ptr(a.root.Load()) }

func (a *Arena) cell(ci int32) *arenaCell {
	return &a.chunks[ci>>arenaChunkShift].Load()[ci&(arenaChunkSize-1)]
}

// TraceAppendCell implements trie.Tracer: it appends cell ci (which must
// be the next index — the mirror and the trie grow in lock step) with
// both pointers nil. The node fields are plain writes: the cell is
// unreachable until an edge to it is atomically published, and that
// publication orders the writes for every reader that follows the edge.
func (a *Arena) TraceAppendCell(ci int32, dv byte, dn int32) {
	if got := a.ncells.Load(); ci != got {
		panic(fmt.Sprintf("concurrent: arena out of sync: appending cell %d, table has %d", ci, got))
	}
	ck := ci >> arenaChunkShift
	if ck >= arenaMaxChunks {
		panic("concurrent: arena cell table full")
	}
	ch := a.chunks[ck].Load()
	if ch == nil {
		ch = new([arenaChunkSize]arenaCell)
		a.chunks[ck].Store(ch)
	}
	c := &ch[ci&(arenaChunkSize-1)]
	c.dv, c.dn = dv, dn
	c.lp.Store(int32(trie.Nil))
	c.rp.Store(int32(trie.Nil))
	a.ncells.Store(ci + 1)
}

// TraceSetPtr implements trie.Tracer: one atomic pointer store. When the
// slot is the last link making a fresh subtree reachable, this store is
// the publication flip.
func (a *Arena) TraceSetPtr(pos trie.Pos, v trie.Ptr) { a.storePtr(pos, v) }

func (a *Arena) storePtr(pos trie.Pos, v trie.Ptr) {
	switch pos.Side {
	case trie.SideRoot:
		a.root.Store(int32(v))
	case trie.SideLeft:
		a.cell(pos.Cell).lp.Store(int32(v))
	default:
		a.cell(pos.Cell).rp.Store(int32(v))
	}
}

// Search runs Algorithm A1 over the arena without locks or allocation and
// returns the leaf pointer reached — the concurrent twin of
// trie.SearchAddr. The result is a hint: the caller must latch the bucket
// and re-run Search to confirm the address before trusting it.
func (a *Arena) Search(key string) trie.Ptr {
	n := trie.Ptr(a.root.Load())
	j := 0
	for n.IsEdge() {
		c := a.cell(n.Cell())
		i := int(c.dn)
		if j == i {
			cj := a.alpha.Digit(key, j)
			if cj <= c.dv {
				if cj == c.dv {
					j++
				}
				n = trie.Ptr(c.lp.Load())
				continue
			}
			n = trie.Ptr(c.rp.Load())
		} else if j < i {
			n = trie.Ptr(c.lp.Load())
		} else {
			n = trie.Ptr(c.rp.Load())
		}
	}
	return n
}

// SearchPath is Search also materializing the logical path of the leaf it
// reaches — the digits that name the leaf's enclosing subtree, which the
// structural paths hash into a stripe key. Like Search the result is a
// hint: the trie may flip mid-walk, so the caller re-verifies the address
// under the locks it takes. A torn walk can at worst yield the path of a
// neighbouring subtree (a pessimal stripe choice, never an unsafe one), so
// unlike the authoritative trie's SearchFrom this walk does not panic on a
// path shorter than a cell's digit number — it pads and carries on.
func (a *Arena) SearchPath(key string) (trie.Ptr, []byte) {
	var path []byte
	n := trie.Ptr(a.root.Load())
	j := 0
	for n.IsEdge() {
		c := a.cell(n.Cell())
		i := int(c.dn)
		goLeft := false
		if j == i {
			cj := a.alpha.Digit(key, j)
			if cj <= c.dv {
				goLeft = true
				if cj == c.dv {
					j++
				}
			}
		} else if j < i {
			goLeft = true
		}
		if goLeft {
			for len(path) < i {
				path = append(path, 0)
			}
			path = append(path[:i], c.dv)
			n = trie.Ptr(c.lp.Load())
		} else {
			n = trie.Ptr(c.rp.Load())
		}
	}
	return n, path
}

// Mirror couples an Arena with the engine's latch table as one
// trie.Tracer: before a leaf address becomes reachable through the arena,
// the latch table is grown to cover it, so a reader that wins the race to
// the fresh leaf always finds its latch allocated.
type Mirror struct {
	Arena   *Arena
	Latches *Latches
}

// TraceAppendCell implements trie.Tracer.
func (m *Mirror) TraceAppendCell(ci int32, dv byte, dn int32) {
	m.Arena.TraceAppendCell(ci, dv, dn)
}

// TraceSetPtr implements trie.Tracer.
func (m *Mirror) TraceSetPtr(pos trie.Pos, v trie.Ptr) {
	if v.IsLeaf() && !v.IsNil() {
		m.Latches.Grow(v.Addr() + 1)
	}
	m.Arena.TraceSetPtr(pos, v)
}
