package concurrent

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"triehash/internal/keys"
)

func newFile(t *testing.T, b, m int) *File {
	t.Helper()
	f, err := New(keys.ASCII, b, m)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigErrors(t *testing.T) {
	if _, err := New(keys.ASCII, 1, 0); err == nil {
		t.Error("capacity 1 accepted")
	}
	if _, err := New(keys.ASCII, 4, 5); err == nil {
		t.Error("split position 5 of 4 accepted")
	}
}

func TestSequentialOps(t *testing.T) {
	f := newFile(t, 4, 0)
	if _, err := f.Get("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty Get: %v", err)
	}
	words := []string{"the", "of", "and", "to", "a", "in", "that", "is", "i", "it",
		"for", "as", "with", "was", "his", "he", "be", "not", "by", "but"}
	for _, w := range words {
		if err := f.Put(w, []byte(w)); err != nil {
			t.Fatalf("Put(%q): %v", w, err)
		}
	}
	if f.Len() != len(words) {
		t.Fatalf("Len = %d", f.Len())
	}
	for _, w := range words {
		v, err := f.Get(w)
		if err != nil || string(v) != w {
			t.Fatalf("Get(%q) = %q, %v", w, v, err)
		}
	}
	// Overwrite does not change the count.
	if err := f.Put("the", []byte("THE")); err != nil {
		t.Fatal(err)
	}
	if f.Len() != len(words) {
		t.Fatalf("Len after overwrite = %d", f.Len())
	}
	if v, _ := f.Get("the"); string(v) != "THE" {
		t.Fatalf("overwrite lost: %q", v)
	}
	// Delete.
	if err := f.Delete("the"); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete("the"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if f.Len() != len(words)-1 {
		t.Fatalf("Len after delete = %d", f.Len())
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := newFile(t, 5, 0)
	model := map[string]string{}
	for step := 0; step < 6000; step++ {
		n := 1 + rng.Intn(6)
		kb := make([]byte, n)
		for i := range kb {
			kb[i] = byte('a' + rng.Intn(5))
		}
		k := string(kb)
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			v := fmt.Sprintf("v%d", step)
			if err := f.Put(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 6, 7, 8:
			v, err := f.Get(k)
			want, ok := model[k]
			switch {
			case ok && (err != nil || string(v) != want):
				t.Fatalf("Get(%q) = %q, %v; want %q", k, v, err, want)
			case !ok && !errors.Is(err, ErrNotFound):
				t.Fatalf("Get(%q): %v", k, err)
			}
		default:
			err := f.Delete(k)
			_, ok := model[k]
			if ok && err != nil || !ok && !errors.Is(err, ErrNotFound) {
				t.Fatalf("Delete(%q): %v (model %v)", k, err, ok)
			}
			delete(model, k)
		}
	}
	if f.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", f.Len(), len(model))
	}
	// Full ordered scan equals the model.
	var got []string
	f.Range("a", "", func(k string, _ []byte) bool { got = append(got, k); return true })
	var want []string
	for k := range model {
		want = append(want, k)
	}
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan %d keys, model %d", len(got), len(want))
	}
}

// TestConcurrentDisjointWriters runs many writers over disjoint key sets
// and verifies nothing is lost.
func TestConcurrentDisjointWriters(t *testing.T) {
	f := newFile(t, 8, 0)
	const writers = 8
	const perWriter = 3000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%d-%06d", w, i)
				if err := f.Put(k, []byte(k)); err != nil {
					t.Errorf("Put(%q): %v", k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", f.Len(), writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i += 97 {
			k := fmt.Sprintf("w%d-%06d", w, i)
			if v, err := f.Get(k); err != nil || string(v) != k {
				t.Fatalf("Get(%q) = %q, %v", k, v, err)
			}
		}
	}
}

// TestReadersNeverMissDuringSplits is the core /VID87/ property: readers
// running lock-free against a splitting file never miss a key that was
// fully inserted before the reads began.
func TestReadersNeverMissDuringSplits(t *testing.T) {
	f := newFile(t, 4, 0) // tiny buckets: constant splitting
	const preloaded = 2000
	pre := make([]string, preloaded)
	for i := range pre {
		pre[i] = fmt.Sprintf("pre-%06d", i*7)
		if err := f.Put(pre[i], []byte(pre[i])); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stopped := make(chan struct{})
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stopped:
					return
				default:
				}
				k := pre[rng.Intn(preloaded)]
				v, err := f.Get(k)
				if err != nil || string(v) != k {
					t.Errorf("reader missed %q during splits: %q, %v", k, v, err)
					return
				}
			}
		}(int64(r))
	}
	// The writer forces thousands of splits interleaved with the reads.
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("new-%06d", i)
		if err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stopped)
	wg.Wait()
	if f.Splits() == 0 {
		t.Fatal("no splits happened; the test proved nothing")
	}
}

// TestConcurrentMixed runs writers, deleters and readers together and
// then checks the final state against a sequentially derived expectation.
func TestConcurrentMixed(t *testing.T) {
	f := newFile(t, 6, 0)
	const n = 4000
	stable := make([]string, n) // inserted once, never deleted
	for i := range stable {
		stable[i] = fmt.Sprintf("stable-%05d", i)
	}
	churn := make([]string, n) // inserted then deleted by the same goroutine
	for i := range churn {
		churn[i] = fmt.Sprintf("churn-%05d", i)
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for _, k := range stable {
			if err := f.Put(k, []byte(k)); err != nil {
				t.Errorf("Put(%q): %v", k, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for _, k := range churn {
			if err := f.Put(k, []byte(k)); err != nil {
				t.Errorf("Put(%q): %v", k, err)
				return
			}
			if err := f.Delete(k); err != nil {
				t.Errorf("Delete(%q): %v", k, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 20000; i++ {
			k := stable[rng.Intn(n)]
			if v, err := f.Get(k); err == nil && string(v) != k {
				t.Errorf("Get(%q) returned wrong value %q", k, v)
				return
			}
		}
	}()
	wg.Wait()
	if f.Len() != n {
		t.Fatalf("Len = %d, want %d (stable only)", f.Len(), n)
	}
	for _, k := range stable {
		if _, err := f.Get(k); err != nil {
			t.Fatalf("stable key %q lost: %v", k, err)
		}
	}
	for _, k := range churn[:100] {
		if _, err := f.Get(k); !errors.Is(err, ErrNotFound) {
			t.Fatalf("churn key %q still present: %v", k, err)
		}
	}
}

// TestRangeConsistentSnapshot: a Range running against writers returns a
// sorted sequence without duplicates.
func TestRangeConsistentSnapshot(t *testing.T) {
	f := newFile(t, 6, 0)
	for i := 0; i < 2000; i++ {
		f.Put(fmt.Sprintf("k%06d", i*2), nil)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			f.Put(fmt.Sprintf("k%06d", i*2+1), nil)
		}
	}()
	for probe := 0; probe < 20; probe++ {
		var got []string
		f.Range("k", "", func(k string, _ []byte) bool {
			got = append(got, k)
			return true
		})
		if !sort.StringsAreSorted(got) {
			t.Fatal("range result not sorted")
		}
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Fatalf("duplicate %q in range result", got[i])
			}
		}
	}
	wg.Wait()
}

func TestGrowthAcrossChunks(t *testing.T) {
	// Force more cells than one arena chunk holds.
	f := newFile(t, 2, 0)
	n := chunkSize + 500
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%07d", i)
		if err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	if f.Cells() <= chunkSize {
		t.Skipf("only %d cells; raise n", f.Cells())
	}
	for i := 0; i < n; i += 131 {
		k := fmt.Sprintf("%07d", i)
		if _, err := f.Get(k); err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
	}
}
