// Package concurrent implements the concurrency scheme the paper's
// conclusion sketches for basic trie hashing (/VID87/): because the trie
// only ever appends cells and a bucket split publishes itself by flipping
// a single leaf pointer, readers can traverse the trie without any lock —
// a writer needs "only the leaf A and the variable N".
//
// Concretely:
//
//   - Cells live in a chunked arena that never moves; DV and DN are
//     immutable after creation and LP/RP are atomics. A split fully
//     initializes its new cells and the new bucket before one atomic
//     pointer store makes them reachable.
//   - Each bucket has its own read-write latch. A reader latches the
//     bucket its trie search found, then re-validates the mapping (the
//     bucket might have split in between) and retries on mismatch, so
//     moved keys are never missed.
//   - Splits serialize on a single structural mutex (the paper's
//     "variable N") and order their effects: fill the new bucket, flip
//     the trie pointer, then shrink the old bucket — a reader at any
//     point sees every key.
//
// The package implements the basic method with a one-level trie, the
// configuration /VID87/ analyzes. Deletions clear records but never merge
// buckets (merging is the part the paper leaves open for the concurrent
// case).
package concurrent

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"triehash/internal/bucket"
	"triehash/internal/keys"
	"triehash/internal/obs"
)

// ErrNotFound is returned when a key is absent.
var ErrNotFound = errors.New("concurrent: key not found")

const (
	chunkShift = 10
	chunkSize  = 1 << chunkShift // cells per arena chunk
	maxChunks  = 1 << 20
)

// nilPtr is the nil leaf; leaves are >= 0 (bucket ids), edges are
// -(cell+1), mirroring internal/trie's tagging.
const nilPtr int32 = -1 << 31

// splitScratch pools the record staging buffers splits use (split-time
// scratch; entries are zeroed before returning to the pool so no record
// data is retained).
var splitScratch = sync.Pool{New: func() any { return new([]bucket.Record) }}

func leafPtr(addr int32) int32 { return addr }
func edgePtr(cell int32) int32 { return -cell - 1 }
func isEdge(p int32) bool      { return p < 0 && p != nilPtr }
func cellOf(p int32) int32     { return -p - 1 }

// acell is a trie cell with atomically mutable pointers.
type acell struct {
	dv byte
	dn int32
	lp atomic.Int32
	rp atomic.Int32
}

// lbucket is a latched bucket.
type lbucket struct {
	mu sync.RWMutex
	b  *bucket.Bucket
}

// File is a concurrently accessible basic-TH file held in memory.
type File struct {
	alpha    keys.Alphabet
	capacity int
	splitPos int

	root   atomic.Int32 // Ptr
	ncells atomic.Int32
	chunks [maxChunks]atomic.Pointer[[chunkSize]acell]

	// structural serializes splits, nil-leaf allocations and bucket
	// allocation — the paper's lock on "the variable N".
	structural sync.Mutex
	buckets    []*lbucket // grown only under structural
	bucketsPtr atomic.Pointer[[]*lbucket]

	nkeys  atomic.Int64
	splits atomic.Int64

	// hook carries structural events to an attached observer (nil = off).
	hook *obs.Hook
}

// SetObsHook attaches the observability hook structural events go to.
// Call it before sharing the file across goroutines.
func (f *File) SetObsHook(h *obs.Hook) { f.hook = h }

// emit sends a structural event; a no-op (one atomic load) with no
// observer attached. Only called under the structural lock, so the
// stamped state figures are consistent.
func (f *File) emit(t obs.EventType, addr, addr2 int32, detail string) {
	o := f.hook.Observer()
	if o == nil {
		return
	}
	o.Emit(obs.Event{
		Type: t, Addr: addr, Addr2: addr2, Detail: detail,
		Keys: int(f.nkeys.Load()), Buckets: len(f.buckets), TrieCells: int(f.ncells.Load()),
	})
}

// New returns an empty concurrent file with bucket capacity b and split
// position m (0 = the middle).
func New(alpha keys.Alphabet, b, m int) (*File, error) {
	if b < 2 {
		return nil, fmt.Errorf("concurrent: bucket capacity %d; need at least 2", b)
	}
	if m == 0 {
		m = b/2 + 1
	}
	if m < 1 || m > b {
		return nil, fmt.Errorf("concurrent: split position %d outside [1, %d]", m, b)
	}
	f := &File{alpha: alpha, capacity: b, splitPos: m}
	f.root.Store(nilPtr)
	f.publishBuckets(nil)
	return f, nil
}

func (f *File) publishBuckets(bs []*lbucket) {
	f.buckets = bs
	f.bucketsPtr.Store(&bs)
}

// cell returns cell i of the arena.
func (f *File) cell(i int32) *acell {
	return &f.chunks[i>>chunkShift].Load()[i&(chunkSize-1)]
}

// appendCell allocates a fully formed cell (under structural) and returns
// its index; it is unreachable until a pointer to it is published.
func (f *File) appendCell(dv byte, dn int32, lp, rp int32) int32 {
	i := f.ncells.Load()
	ci := i >> chunkShift
	if f.chunks[ci].Load() == nil {
		f.chunks[ci].Store(new([chunkSize]acell))
	}
	c := &f.chunks[ci].Load()[i&(chunkSize-1)]
	c.dv, c.dn = dv, dn
	c.lp.Store(lp)
	c.rp.Store(rp)
	f.ncells.Store(i + 1)
	return i
}

// Cells returns the trie size M.
func (f *File) Cells() int { return int(f.ncells.Load()) }

// Len returns the number of records.
func (f *File) Len() int { return int(f.nkeys.Load()) }

// Splits returns the number of bucket splits performed.
func (f *File) Splits() int { return int(f.splits.Load()) }

// slot identifies where a search ended: the root slot or one side of a
// cell.
type slot struct {
	cell int32 // -1 = root
	left bool
}

// search runs Algorithm A1 with atomic pointer loads; no lock is taken.
func (f *File) search(key string) (ptr int32, pos slot, path []byte) {
	n := f.root.Load()
	pos = slot{cell: -1}
	j := 0
	for isEdge(n) {
		ci := cellOf(n)
		c := f.cell(ci)
		i := int(c.dn)
		goLeft := false
		if j == i {
			kj := f.alpha.Digit(key, j)
			if kj <= c.dv {
				goLeft = true
				if kj == c.dv {
					j++
				}
			}
		} else if j < i {
			goLeft = true
		}
		if goLeft {
			// A reader racing several splits may momentarily observe a
			// mixed trie; pad defensively (the path is only consumed
			// by writers holding the structural lock, where the trie
			// is consistent and padding never triggers).
			for len(path) < i {
				path = append(path, f.alpha.Min)
			}
			path = append(path[:i], c.dv)
			pos = slot{cell: ci, left: true}
			n = c.lp.Load()
		} else {
			pos = slot{cell: ci, left: false}
			n = c.rp.Load()
		}
	}
	return n, pos, path
}

// searchLeaf runs Algorithm A1 with atomic pointer loads, tracking only
// the leaf pointer — the allocation-free form the point-operation hot
// paths use. The logical path and final slot matter only to writers
// holding the structural lock; they run the full search.
func (f *File) searchLeaf(key string) int32 {
	n := f.root.Load()
	j := 0
	for isEdge(n) {
		c := f.cell(cellOf(n))
		i := int(c.dn)
		if j == i {
			kj := f.alpha.Digit(key, j)
			if kj <= c.dv {
				if kj == c.dv {
					j++
				}
				n = c.lp.Load()
				continue
			}
			n = c.rp.Load()
		} else if j < i {
			n = c.lp.Load()
		} else {
			n = c.rp.Load()
		}
	}
	return n
}

// storeSlot publishes a pointer (under structural).
func (f *File) storeSlot(s slot, v int32) {
	if s.cell < 0 {
		f.root.Store(v)
		return
	}
	c := f.cell(s.cell)
	if s.left {
		c.lp.Store(v)
	} else {
		c.rp.Store(v)
	}
}

// Get returns the value stored under key. Readers take no trie lock; the
// bucket latch plus re-validation makes the lookup safe against a
// concurrent split of the target bucket. The whole path — trie descent,
// latch, in-bucket binary search — allocates nothing (gated by
// TestGetZeroAlloc).
func (f *File) Get(key string) ([]byte, error) {
	if err := f.alpha.Validate(key); err != nil {
		return nil, err
	}
	for {
		ptr := f.searchLeaf(key)
		if ptr == nilPtr {
			return nil, ErrNotFound
		}
		lb := (*f.bucketsPtr.Load())[ptr]
		lb.mu.RLock()
		// Re-validate: the bucket may have split between the search
		// and the latch; the trie flip precedes the bucket shrink, so
		// re-searching under the latch yields the truth.
		if f.searchLeaf(key) != ptr {
			lb.mu.RUnlock()
			continue
		}
		v, ok := lb.b.Get(key)
		lb.mu.RUnlock()
		if !ok {
			return nil, ErrNotFound
		}
		return v, nil
	}
}

// Put inserts or replaces the record for key.
func (f *File) Put(key string, value []byte) error {
	if err := f.alpha.Validate(key); err != nil {
		return err
	}
	for {
		ptr := f.searchLeaf(key)
		if ptr == nilPtr {
			if f.putNil(key, value) {
				return nil
			}
			continue
		}
		lb := (*f.bucketsPtr.Load())[ptr]
		lb.mu.Lock()
		if f.searchLeaf(key) != ptr {
			lb.mu.Unlock()
			continue
		}
		if _, exists := lb.b.Get(key); exists {
			lb.b.Put(key, value)
			lb.mu.Unlock()
			return nil
		}
		if lb.b.Len() < f.capacity {
			lb.b.Put(key, value)
			f.nkeys.Add(1)
			lb.mu.Unlock()
			return nil
		}
		// Overflow: the split needs the structural lock, which orders
		// before bucket latches; release and retry under structural.
		// The key is never transiently visible.
		lb.mu.Unlock()
		if f.splitAndInsert(key, value) {
			return nil
		}
	}
}

// putNil allocates a bucket for a nil leaf and inserts the key. Reports
// false when the leaf changed underfoot (caller retries).
func (f *File) putNil(key string, value []byte) bool {
	f.structural.Lock()
	defer f.structural.Unlock()
	ptr, pos, _ := f.search(key)
	if ptr != nilPtr {
		return false
	}
	addr := f.allocBucket()
	lb := f.buckets[addr]
	lb.b.Put(key, value)
	f.storeSlot(pos, leafPtr(addr)) // publication point
	f.nkeys.Add(1)
	f.emit(obs.EvNilAlloc, addr, -1, "")
	return true
}

// allocBucket appends a bucket (under structural) and publishes the grown
// registry.
func (f *File) allocBucket() int32 {
	addr := int32(len(f.buckets))
	bs := make([]*lbucket, len(f.buckets)+1)
	copy(bs, f.buckets)
	bs[addr] = &lbucket{b: bucket.New(f.capacity)}
	f.publishBuckets(bs)
	return addr
}

// splitAndInsert resolves an overflow under the structural lock: it
// re-runs the search (the world may have changed), splits the bucket if
// it is still full, inserts the key, and publishes the expansion with a
// single pointer store. Reports false when the key's bucket changed and
// no insertion happened (caller retries).
func (f *File) splitAndInsert(key string, value []byte) bool {
	f.structural.Lock()
	defer f.structural.Unlock()
	ptr, pos, path := f.search(key)
	if ptr == nilPtr {
		return false
	}
	addr := ptr
	lb := f.buckets[addr]
	lb.mu.Lock()
	if _, exists := lb.b.Get(key); exists || lb.b.Len() < f.capacity {
		// Someone else split (or the key appeared) meanwhile.
		replaced := lb.b.Put(key, value)
		lb.mu.Unlock()
		if !replaced {
			f.nkeys.Add(1)
		}
		return true
	}
	// Build the b+1 sequence to split. The bucket is sorted, so the
	// split and bounding keys are read in place — no key-slice copy.
	lb.b.Put(key, value)
	splitKey := lb.b.At(f.splitPos - 1).Key
	boundKey := lb.b.MaxKey()
	s := f.alpha.SplitString(splitKey, boundKey)

	// Phase 1: fill the new bucket (unreachable so far). The staging
	// slice for moved records comes from a pool: steady split traffic
	// reuses scratch instead of allocating per split.
	newAddr := f.allocBucket()
	nb := f.buckets[newAddr]
	scratch := splitScratch.Get().(*[]bucket.Record)
	moved := (*scratch)[:0]
	for i := 0; i < lb.b.Len(); i++ {
		r := lb.b.At(i)
		if !f.alpha.KeyLEBound(r.Key, s) {
			moved = append(moved, r)
		}
	}
	nb.b.Absorb(moved)
	for i := range moved {
		moved[i] = bucket.Record{} // drop key/value references before pooling
	}
	*scratch = moved[:0]
	splitScratch.Put(scratch)

	// Phase 2: build the expansion cells bottom-up, then publish with
	// one store into the slot that held leaf A. Nil leaves of the
	// chain are born as nilPtr.
	cp := keys.CommonPrefixLen(s, path)
	bottom := f.appendCell(s[len(s)-1], int32(len(s)-1), leafPtr(addr), leafPtr(newAddr))
	top := bottom
	for j := len(s) - 2; j >= cp; j-- {
		top = f.appendCell(s[j], int32(j), edgePtr(top), nilPtr)
	}
	f.storeSlot(pos, edgePtr(top)) // publication point

	// Phase 3: shrink the old bucket. Readers that looked A up before
	// the flip still see every key; readers after the flip route moved
	// keys to the already-filled newAddr.
	lb.b.SplitOff(func(k string) bool { return f.alpha.KeyLEBound(k, s) })
	lb.mu.Unlock()
	f.nkeys.Add(1)
	f.splits.Add(1)
	f.emit(obs.EvSplit, addr, newAddr, fmt.Sprintf("split string %q", s))
	return true
}

// Delete removes the record for key. Buckets are never merged (the open
// part of the concurrent scheme), so the trie only grows.
func (f *File) Delete(key string) error {
	if err := f.alpha.Validate(key); err != nil {
		return err
	}
	for {
		ptr := f.searchLeaf(key)
		if ptr == nilPtr {
			return ErrNotFound
		}
		lb := (*f.bucketsPtr.Load())[ptr]
		lb.mu.Lock()
		if f.searchLeaf(key) != ptr {
			lb.mu.Unlock()
			continue
		}
		ok := lb.b.Delete(key)
		lb.mu.Unlock()
		if !ok {
			return ErrNotFound
		}
		f.nkeys.Add(-1)
		return nil
	}
}

// Range calls fn for records with from <= key <= to in ascending order.
// It holds the structural lock, so the scan is a consistent snapshot that
// blocks splits (but not bucket-level reads) while it runs.
func (f *File) Range(from, to string, fn func(key string, value []byte) bool) error {
	f.structural.Lock()
	defer f.structural.Unlock()
	var walk func(p int32) bool
	walk = func(p int32) bool {
		if p == nilPtr {
			return true
		}
		if isEdge(p) {
			c := f.cell(cellOf(p))
			return walk(c.lp.Load()) && walk(c.rp.Load())
		}
		lb := f.buckets[p]
		lb.mu.RLock()
		defer lb.mu.RUnlock()
		if lb.b.Len() == 0 {
			return true
		}
		if to != "" && lb.b.MinKey() > to {
			return false
		}
		if lb.b.MaxKey() < from {
			return true
		}
		return lb.b.Ascend(from, to, func(r bucket.Record) bool { return fn(r.Key, r.Value) })
	}
	walk(f.root.Load())
	return nil
}
