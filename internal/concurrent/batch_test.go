package concurrent

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randKeys produces n keys over a small alphabet so buckets split and
// many keys share buckets (the interesting cases for latch dedup).
func randKeys(rng *rand.Rand, n int) []string {
	out := make([]string, n)
	for i := range out {
		kb := make([]byte, 1+rng.Intn(6))
		for j := range kb {
			kb[j] = byte('a' + rng.Intn(6))
		}
		out[i] = string(kb)
	}
	return out
}

// TestGetBatchDifferential is the S-differential check: over randomized
// workloads, GetBatch must be byte-identical to a loop of sequential
// Gets — same values, same error per position.
func TestGetBatchDifferential(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f := newFile(t, 4, 0)
		inserted := randKeys(rng, 2000)
		for i, k := range inserted {
			if err := f.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		// Queries: present keys, absent keys, invalid keys, duplicates.
		queries := append(randKeys(rng, 500), inserted[:500]...)
		queries = append(queries, "", "zzz\x00")
		queries = append(queries, queries[0], queries[1])
		vals, errs := f.GetBatch(queries)
		if len(vals) != len(queries) || len(errs) != len(queries) {
			t.Fatalf("result lengths %d/%d, want %d", len(vals), len(errs), len(queries))
		}
		for i, k := range queries {
			wantV, wantErr := f.Get(k)
			if !errors.Is(errs[i], wantErr) && (errs[i] == nil) != (wantErr == nil) {
				t.Fatalf("seed %d: GetBatch[%d](%q) err %v, sequential %v", seed, i, k, errs[i], wantErr)
			}
			if string(vals[i]) != string(wantV) {
				t.Fatalf("seed %d: GetBatch[%d](%q) = %q, sequential %q", seed, i, k, vals[i], wantV)
			}
		}
	}
}

// TestPutBatchDifferential applies the same randomized workload — with
// duplicate keys and enough volume to force splits — through PutBatch
// and through sequential Puts, then requires identical file contents.
func TestPutBatchDifferential(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		keys := randKeys(rng, 3000)
		vals := make([][]byte, len(keys))
		for i := range vals {
			vals[i] = []byte(fmt.Sprintf("v%d", i))
		}
		batch := newFile(t, 4, 0)
		if errs := batch.PutBatch(keys, vals); errs != nil {
			for i, err := range errs {
				if err != nil {
					t.Fatalf("seed %d: PutBatch[%d](%q): %v", seed, i, keys[i], err)
				}
			}
		}
		seq := newFile(t, 4, 0)
		for i, k := range keys {
			if err := seq.Put(k, vals[i]); err != nil {
				t.Fatal(err)
			}
		}
		if batch.Len() != seq.Len() {
			t.Fatalf("seed %d: batch file has %d keys, sequential %d", seed, batch.Len(), seq.Len())
		}
		var got, want []string
		batch.Range("a", "", func(k string, v []byte) bool {
			got = append(got, k+"="+string(v))
			return true
		})
		seq.Range("a", "", func(k string, v []byte) bool {
			want = append(want, k+"="+string(v))
			return true
		})
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("seed %d: batch and sequential files diverge (%d vs %d records)", seed, len(got), len(want))
		}
	}
}

func TestPutBatchLengthMismatchPanics(t *testing.T) {
	f := newFile(t, 4, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("PutBatch with mismatched lengths did not panic")
		}
	}()
	f.PutBatch([]string{"a", "b"}, [][]byte{nil})
}

// TestBatchDuringSplits races batch operations against single-key
// writers so batch re-partitioning after a concurrent split is
// exercised under the race detector.
func TestBatchDuringSplits(t *testing.T) {
	f := newFile(t, 4, 0)
	rng := rand.New(rand.NewSource(7))
	stable := randKeys(rng, 400)
	sv := make([][]byte, len(stable))
	for i := range sv {
		sv[i] = []byte("s")
	}
	if errs := f.PutBatch(stable, sv); errs == nil {
		t.Fatal("nil errs")
	}
	var wg, writers sync.WaitGroup
	stop := make(chan struct{})
	// Writers keep splitting buckets until the batch goroutines finish.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := randKeys(rng, 1)[0]
				if err := f.Put(k, []byte("w")); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w) + 31)
	}
	// Batch readers must always see the stable keys.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				vals, errs := f.GetBatch(stable)
				for i := range stable {
					if errs[i] != nil || vals[i] == nil {
						t.Errorf("stable key %q lost during splits: %v", stable[i], errs[i])
						return
					}
				}
			}
		}()
	}
	// Batch writers churn their own key range.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(97))
		for round := 0; round < 30; round++ {
			ks := randKeys(rng, 100)
			vs := make([][]byte, len(ks))
			for i := range vs {
				vs[i] = []byte("b")
			}
			for i, err := range f.PutBatch(ks, vs) {
				if err != nil {
					t.Errorf("PutBatch(%q): %v", ks[i], err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	writers.Wait()
	// Quiesced: every stable key must still be reachable sequentially.
	for _, k := range stable {
		if _, err := f.Get(k); err != nil {
			t.Fatalf("stable key %q unreachable after churn: %v", k, err)
		}
	}
}

// TestGetZeroAlloc is the hot-path gate: a concurrent-file Get of a
// resident key allocates nothing (path-free trie descent, closure-free
// bucket search).
func TestGetZeroAlloc(t *testing.T) {
	f := newFile(t, 8, 0)
	rng := rand.New(rand.NewSource(3))
	ks := randKeys(rng, 1000)
	for _, k := range ks {
		if err := f.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	var sink []byte
	allocs := testing.AllocsPerRun(200, func() {
		v, err := f.Get(ks[123])
		if err != nil {
			t.Fatal(err)
		}
		sink = v
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("Get allocates %v objects/op, want 0", allocs)
	}
	// Misses are also allocation-free up to the ErrNotFound return.
	allocs = testing.AllocsPerRun(200, func() {
		if _, err := f.Get("zzzzzz"); !errors.Is(err, ErrNotFound) {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("missing-key Get allocates %v objects/op, want 0", allocs)
	}
}
