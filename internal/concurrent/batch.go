// Batch operations: one call serves many keys. Keys are partitioned by
// the trie leaf (bucket) they map to, each bucket's latch is taken once
// for its whole group — the latch dedup that makes a batch cheaper than
// its sequential expansion — and groups fan out across a bounded worker
// pool. Workers hold at most one latch at a time and groups are visited
// in ascending bucket order, so no lock-order cycle can form. A key whose
// bucket splits between partitioning and latching is re-partitioned in
// the next round, the same retry discipline the single-key operations
// use.
package concurrent

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// batchGroup is the work unit of a batch round: one bucket and the batch
// indices that mapped to it.
type batchGroup struct {
	addr int32
	idxs []int
}

// partition groups the pending batch indices by the bucket their key
// currently maps to, in ascending bucket order. Keys on a nil leaf go to
// the caller-supplied handler instead.
func (f *File) partition(keys []string, pending []int, onNil func(i int)) []batchGroup {
	byAddr := make(map[int32][]int, len(pending))
	for _, i := range pending {
		ptr := f.searchLeaf(keys[i])
		if ptr == nilPtr {
			onNil(i)
			continue
		}
		byAddr[ptr] = append(byAddr[ptr], i)
	}
	groups := make([]batchGroup, 0, len(byAddr))
	for addr, idxs := range byAddr {
		groups = append(groups, batchGroup{addr: addr, idxs: idxs})
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].addr < groups[b].addr })
	return groups
}

// fanOut runs fn over every group on a pool of at most workers
// goroutines (small batches run inline).
func fanOut(groups []batchGroup, workers int, fn func(batchGroup)) {
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		for _, g := range groups {
			fn(g)
		}
		return
	}
	ch := make(chan batchGroup)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for g := range ch {
				fn(g)
			}
		}()
	}
	for _, g := range groups {
		ch <- g
	}
	close(ch)
	wg.Wait()
}

// GetBatch looks up many keys in one pass: keys are partitioned by
// bucket, every bucket latch is taken once per round regardless of how
// many keys it serves, and bucket groups are served concurrently by a
// worker pool bounded by GOMAXPROCS. Results align with keys: errs[i] is
// nil and vals[i] the value on success, errs[i] is ErrNotFound (or a
// validation error) otherwise. Each individual lookup is equivalent to a
// Get at some instant during the call.
func (f *File) GetBatch(keys []string) (vals [][]byte, errs []error) {
	vals = make([][]byte, len(keys))
	errs = make([]error, len(keys))
	pending := make([]int, 0, len(keys))
	for i, k := range keys {
		if err := f.alpha.Validate(k); err != nil {
			errs[i] = err
			continue
		}
		pending = append(pending, i)
	}
	workers := runtime.GOMAXPROCS(0)
	for len(pending) > 0 {
		groups := f.partition(keys, pending, func(i int) { errs[i] = ErrNotFound })
		var retryMu sync.Mutex
		var retry []int
		fanOut(groups, workers, func(g batchGroup) {
			lb := (*f.bucketsPtr.Load())[g.addr]
			lb.mu.RLock()
			var missed []int
			for _, i := range g.idxs {
				// Re-validate under the latch, exactly like Get: a
				// split may have moved the key since partitioning.
				if f.searchLeaf(keys[i]) != g.addr {
					missed = append(missed, i)
					continue
				}
				if v, ok := lb.b.Get(keys[i]); ok {
					vals[i] = v
				} else {
					errs[i] = ErrNotFound
				}
			}
			lb.mu.RUnlock()
			if len(missed) > 0 {
				retryMu.Lock()
				retry = append(retry, missed...)
				retryMu.Unlock()
			}
		})
		pending = retry
	}
	return vals, errs
}

// PutBatch inserts or replaces many records in one pass, with the same
// partition/latch-dedup/fan-out scheme as GetBatch. When one batch names
// a key several times only the last occurrence is applied, so the final
// state matches the sequential loop. Overflowing inserts and nil-leaf
// allocations leave the fast path and run as ordinary Puts (they need
// the structural lock anyway). errs aligns with keys; values may be nil.
func (f *File) PutBatch(keys []string, values [][]byte) (errs []error) {
	if len(keys) != len(values) {
		panic(fmt.Sprintf("concurrent: PutBatch with %d keys but %d values", len(keys), len(values)))
	}
	errs = make([]error, len(keys))
	// Deduplicate: only the last occurrence of a key is applied.
	last := make(map[string]int, len(keys))
	for i, k := range keys {
		last[k] = i
	}
	pending := make([]int, 0, len(keys))
	for i, k := range keys {
		if err := f.alpha.Validate(k); err != nil {
			errs[i] = err
			continue
		}
		if last[k] != i {
			continue // superseded within the batch
		}
		pending = append(pending, i)
	}
	workers := runtime.GOMAXPROCS(0)
	var slowMu sync.Mutex
	var slow []int // overflow or nil leaf: handled by ordinary Put below
	for len(pending) > 0 {
		groups := f.partition(keys, pending, func(i int) {
			slowMu.Lock()
			slow = append(slow, i)
			slowMu.Unlock()
		})
		var retryMu sync.Mutex
		var retry []int
		fanOut(groups, workers, func(g batchGroup) {
			lb := (*f.bucketsPtr.Load())[g.addr]
			lb.mu.Lock()
			var missed, over []int
			var added int64
			for _, i := range g.idxs {
				if f.searchLeaf(keys[i]) != g.addr {
					missed = append(missed, i)
					continue
				}
				if _, exists := lb.b.Get(keys[i]); exists {
					lb.b.Put(keys[i], values[i])
					continue
				}
				if lb.b.Len() < f.capacity {
					lb.b.Put(keys[i], values[i])
					added++
					continue
				}
				over = append(over, i)
			}
			lb.mu.Unlock()
			if added > 0 {
				f.nkeys.Add(added)
			}
			if len(missed) > 0 {
				retryMu.Lock()
				retry = append(retry, missed...)
				retryMu.Unlock()
			}
			if len(over) > 0 {
				slowMu.Lock()
				slow = append(slow, over...)
				slowMu.Unlock()
			}
		})
		pending = retry
	}
	// Slow path: splits serialize on the structural lock regardless, so
	// these run as plain Puts with no latch held.
	for _, i := range slow {
		errs[i] = f.Put(keys[i], values[i])
	}
	return errs
}
