package concurrent

import "sync"

// Stripes is the subtree-keyed structural lock table: splits, merges and
// borrows lock the stripe of the nearest enclosing trie subtree instead of
// one global structural lock, so structural operations in disjoint
// subtrees proceed in parallel. A stripe is named by the first StripeDepth
// digits of the leaf's logical path (the subtree prefix); the prefix
// hashes into a small fixed table, which bounds memory no matter how deep
// the trie grows. Leaves whose path is shorter than StripeDepth sit too
// close to the root for a subtree to enclose them — they fall back to the
// root stripe, which also serializes the rare root split.
//
// Stripes order below the engine's world lock and above the bucket
// latches: a structural operation locks its stripe(s) first, then the
// bucket latches, and never the other way around (the lockorder analyzer
// enforces it). When one operation spans several subtrees — a merge with
// its in-order neighbours — the stripes are acquired as one deduplicated
// set in ascending index order, which keeps the acquisition graph acyclic
// exactly like the latch layer's LockPair.
type Stripes struct {
	mus [NumStripes + 1]sync.Mutex
}

const (
	// StripeDepth is how many leading path digits name a subtree. Three
	// digits distinguish up to |alphabet|^3 subtrees — far more than the
	// stripe table has slots, so the hash, not the depth, bounds sharing.
	StripeDepth = 3
	// NumStripes is the size of the hashed stripe table. 64 stripes keep
	// the table at a cache line's worth of mutexes while making the
	// birthday collision odds for ~8 concurrent writers negligible.
	NumStripes = 64
	// RootStripe is the index of the fallback stripe for leaves too close
	// to the root to have an enclosing StripeDepth-digit subtree.
	RootStripe = NumStripes
)

// NewStripes returns a zeroed stripe table (the zero value is also valid).
func NewStripes() *Stripes { return &Stripes{} }

// KeyOf maps a leaf's logical path to its stripe index. Paths shorter than
// StripeDepth fall back to RootStripe.
func (s *Stripes) KeyOf(path []byte) int {
	if len(path) < StripeDepth {
		return RootStripe
	}
	// FNV-1a over the subtree prefix: cheap, deterministic, and good
	// enough dispersion for a 64-slot table.
	h := uint32(2166136261)
	for _, d := range path[:StripeDepth] {
		h = (h ^ uint32(d)) * 16777619
	}
	return int(h % NumStripes)
}

// Lock locks stripe k. Callers locking more than one stripe must go
// through Acquire or otherwise lock in ascending index order.
func (s *Stripes) Lock(k int) { s.mus[k].Lock() }

// Unlock unlocks stripe k.
func (s *Stripes) Unlock(k int) { s.mus[k].Unlock() }

// SortKeys sorts ks ascending in place, removes duplicates, and returns
// the shortened slice — the acquisition order every multi-stripe caller
// must use.
func SortKeys(ks []int) []int {
	// Insertion sort: the sets are tiny (a merge touches at most three
	// subtrees) and this avoids pulling package sort into the hot path.
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	out := ks[:0]
	for i, k := range ks {
		if i == 0 || k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// Acquire locks the stripes named by ks — deduplicated, ascending index
// order — and returns the unlock, which releases them in reverse. It is
// the sanctioned multi-stripe acquisition site (the lockorder analyzer
// flags a second stripe taken anywhere else).
func (s *Stripes) Acquire(ks ...int) func() {
	ord := SortKeys(ks)
	for _, k := range ord {
		s.mus[k].Lock()
	}
	return func() {
		for i := len(ord) - 1; i >= 0; i-- {
			s.mus[ord[i]].Unlock()
		}
	}
}
