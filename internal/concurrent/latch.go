package concurrent

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Latches is the engine's per-bucket latch table: one RW latch per bucket
// address, growable without blocking readers. Lookup is a single atomic
// load of the table pointer; growth copies the pointer slice (never the
// latches themselves, so a latch handed out before a growth stays valid)
// and publishes the longer table atomically.
type Latches struct {
	mu  sync.Mutex // serializes growth
	tab atomic.Pointer[[]*sync.RWMutex]
}

// NewLatches returns a table covering bucket addresses [0, n).
func NewLatches(n int32) *Latches {
	l := &Latches{}
	l.Grow(n)
	return l
}

// Len returns the number of addresses the table currently covers.
func (l *Latches) Len() int { return len(*l.tab.Load()) }

// Latch returns the latch for bucket address addr, growing the table if
// addr is beyond it.
func (l *Latches) Latch(addr int32) *sync.RWMutex {
	tab := *l.tab.Load()
	if int(addr) < len(tab) {
		return tab[addr]
	}
	l.Grow(addr + 1)
	return (*l.tab.Load())[addr]
}

// Grow extends the table to cover at least n addresses. It must complete
// before an address >= the old length is published to concurrent readers
// (Mirror.TraceSetPtr enforces this for trie publication).
func (l *Latches) Grow(n int32) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var cur []*sync.RWMutex
	if p := l.tab.Load(); p != nil {
		cur = *p
	}
	if int(n) <= len(cur) {
		return
	}
	want := 2 * len(cur)
	if want < int(n) {
		want = int(n)
	}
	if want < 8 {
		want = 8
	}
	nt := make([]*sync.RWMutex, want)
	copy(nt, cur)
	for i := len(cur); i < want; i++ {
		nt[i] = new(sync.RWMutex)
	}
	l.tab.Store(&nt)
}

// LockPair write-locks the latches of two bucket addresses in ascending
// address order — the engine's sole sanctioned two-latch acquisition,
// used by guarded merging — and returns the matching unlock. Equal
// addresses lock once.
func (l *Latches) LockPair(a, b int32) func() {
	if a == b {
		mu := l.Latch(a)
		mu.Lock()
		return mu.Unlock
	}
	if a > b {
		a, b = b, a
	}
	lo := l.Latch(a)
	hi := l.Latch(b)
	lo.Lock()
	hi.Lock()
	return func() {
		hi.Unlock()
		lo.Unlock()
	}
}

// fanActive counts the extra fan-out goroutines currently running across
// every FanOut call in the process, so concurrent batch callers share one
// CPU budget instead of multiplying their worker counts — eight client
// goroutines each fanning out GOMAXPROCS workers on a small host is pure
// scheduler churn (the BENCH_write.json putbatch regression).
var fanActive atomic.Int32

// fanBudget is the number of fan-out goroutines worth having runnable at
// once: the scheduler can execute at most min(GOMAXPROCS, NumCPU) of them,
// so spawning more only adds context switches.
func fanBudget() int {
	b := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < b {
		b = c
	}
	return b
}

// FanOut runs fn(i) for every i in [0, n) and returns when all calls have
// finished. It is the bounded work distributor shared by the batch paths
// and the parallel bulk loader. The caller's goroutine always works; up to
// workers-1 extra goroutines join it, further capped by the process-wide
// budget of min(GOMAXPROCS, NumCPU) runnable fan-out workers — on a
// single-CPU host every FanOut degenerates to an inline loop, which is
// exactly as fast as the scheduler could make it anyway.
func FanOut(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	extra := workers - 1
	if avail := fanBudget() - 1 - int(fanActive.Load()); extra > avail {
		extra = avail
	}
	if extra <= 0 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	fanActive.Add(int32(extra))
	var next atomic.Int32
	var wg sync.WaitGroup
	wg.Add(extra)
	for w := 0; w < extra; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		fn(i)
	}
	wg.Wait()
	fanActive.Add(int32(-extra))
}
