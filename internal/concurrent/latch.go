package concurrent

import (
	"sync"
	"sync/atomic"
)

// Latches is the engine's per-bucket latch table: one RW latch per bucket
// address, growable without blocking readers. Lookup is a single atomic
// load of the table pointer; growth copies the pointer slice (never the
// latches themselves, so a latch handed out before a growth stays valid)
// and publishes the longer table atomically.
type Latches struct {
	mu  sync.Mutex // serializes growth
	tab atomic.Pointer[[]*sync.RWMutex]
}

// NewLatches returns a table covering bucket addresses [0, n).
func NewLatches(n int32) *Latches {
	l := &Latches{}
	l.Grow(n)
	return l
}

// Len returns the number of addresses the table currently covers.
func (l *Latches) Len() int { return len(*l.tab.Load()) }

// Latch returns the latch for bucket address addr, growing the table if
// addr is beyond it.
func (l *Latches) Latch(addr int32) *sync.RWMutex {
	tab := *l.tab.Load()
	if int(addr) < len(tab) {
		return tab[addr]
	}
	l.Grow(addr + 1)
	return (*l.tab.Load())[addr]
}

// Grow extends the table to cover at least n addresses. It must complete
// before an address >= the old length is published to concurrent readers
// (Mirror.TraceSetPtr enforces this for trie publication).
func (l *Latches) Grow(n int32) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var cur []*sync.RWMutex
	if p := l.tab.Load(); p != nil {
		cur = *p
	}
	if int(n) <= len(cur) {
		return
	}
	want := 2 * len(cur)
	if want < int(n) {
		want = int(n)
	}
	if want < 8 {
		want = 8
	}
	nt := make([]*sync.RWMutex, want)
	copy(nt, cur)
	for i := len(cur); i < want; i++ {
		nt[i] = new(sync.RWMutex)
	}
	l.tab.Store(&nt)
}

// LockPair write-locks the latches of two bucket addresses in ascending
// address order — the engine's sole sanctioned two-latch acquisition,
// used by guarded merging — and returns the matching unlock. Equal
// addresses lock once.
func (l *Latches) LockPair(a, b int32) func() {
	if a == b {
		mu := l.Latch(a)
		mu.Lock()
		return mu.Unlock
	}
	if a > b {
		a, b = b, a
	}
	lo := l.Latch(a)
	hi := l.Latch(b)
	lo.Lock()
	hi.Lock()
	return func() {
		hi.Unlock()
		lo.Unlock()
	}
}

// FanOut runs fn(i) for every i in [0, n) across at most workers
// goroutines (inline when workers <= 1 or n <= 1), returning when all
// calls have finished. It is the bounded work distributor shared by the
// batch paths and the parallel bulk loader.
func FanOut(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
