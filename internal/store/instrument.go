package store

import (
	"time"

	"triehash/internal/bucket"
	"triehash/internal/obs"
)

// Instrumented wraps a Store with per-operation latency recording into an
// obs.Hook's observer. It composes with the other wrappers (outermost in
// the stack, so cache hits and injected faults are timed too). With no
// observer attached each operation pays one atomic load and a branch —
// nothing else, and no allocation.
type Instrumented struct {
	Store
	viewer Viewer       // s's ReadView when it has one, resolved once
	probe  TaggedViewer // s's ReadViewTagged when it has one, resolved once
	hook   *obs.Hook
}

// TaggedViewer is a Viewer that also reports whether the view was served
// from a resident pool frame (true) or had to reach the store (false).
// ShardedCache implements it; the Instrumented wrapper uses it to split
// span time between the cache-probe and store-read stages.
type TaggedViewer interface {
	ReadViewTagged(addr int32) (*bucket.Bucket, bool, error)
}

// SpanViewer is the span-aware read-view capability the engines' span
// paths use: like Viewer's ReadView, but charging the access to the
// span's cache-probe or store-read stage. A nil span degrades to a plain
// ReadView. The Instrumented wrapper implements it.
type SpanViewer interface {
	ReadViewSpan(addr int32, sp *obs.Span) (*bucket.Bucket, error)
}

// NewInstrumented wraps s; hook may be shared with other components.
func NewInstrumented(s Store, hook *obs.Hook) *Instrumented {
	i := &Instrumented{Store: s, hook: hook}
	i.viewer, _ = s.(Viewer)
	i.probe, _ = s.(TaggedViewer)
	return i
}

// Unwrap returns the wrapped store.
func (s *Instrumented) Unwrap() Store { return s.Store }

// Read implements Store, timing the access when observed.
func (s *Instrumented) Read(addr int32) (*bucket.Bucket, error) {
	o := s.hook.Observer()
	if o == nil {
		return s.Store.Read(addr)
	}
	start := time.Now()
	b, err := s.Store.Read(addr)
	o.RecordOp(obs.OpRead, time.Since(start))
	return b, err
}

// ReadView implements Viewer, timing the access as a read. The view is
// served by the wrapped store's fast path when it has one (a cache hit
// skips the clone); wrapped stores without ReadView serve a plain Read,
// so the wrapper is always a Viewer without changing semantics. The
// inner Viewer is resolved at construction, not per call: this method
// sits on the zero-allocation Get hot path, where a repeated interface
// assertion is measurable.
func (s *Instrumented) ReadView(addr int32) (*bucket.Bucket, error) {
	o := s.hook.Observer()
	if o == nil {
		if s.viewer != nil {
			return s.viewer.ReadView(addr)
		}
		return s.Store.Read(addr)
	}
	start := time.Now()
	var b *bucket.Bucket
	var err error
	if s.viewer != nil {
		b, err = s.viewer.ReadView(addr)
	} else {
		b, err = s.Store.Read(addr)
	}
	o.RecordOp(obs.OpRead, time.Since(start))
	return b, err
}

// ReadViewSpan implements SpanViewer: a span-carrying ReadView that
// charges the access to the span's cache-probe stage (pool hit) or
// store-read stage (the access reached the store), and still feeds the
// whole-access OpRead histogram. With a nil span it is exactly ReadView.
func (s *Instrumented) ReadViewSpan(addr int32, sp *obs.Span) (*bucket.Bucket, error) {
	if sp == nil {
		return s.ReadView(addr)
	}
	var (
		b     *bucket.Bucket
		hit   bool
		err   error
		stage = obs.StageStoreRead
	)
	switch {
	case s.probe != nil:
		b, hit, err = s.probe.ReadViewTagged(addr)
		if hit {
			stage = obs.StageCacheProbe
		}
	case s.viewer != nil:
		b, err = s.viewer.ReadView(addr)
	default:
		b, err = s.Store.Read(addr)
	}
	d := sp.Mark(stage)
	s.hook.Observer().RecordOp(obs.OpRead, d)
	return b, err
}

// Write implements Store, timing the access when observed.
func (s *Instrumented) Write(addr int32, b *bucket.Bucket) error {
	o := s.hook.Observer()
	if o == nil {
		return s.Store.Write(addr, b)
	}
	start := time.Now()
	err := s.Store.Write(addr, b)
	o.RecordOp(obs.OpWrite, time.Since(start))
	return err
}

// Alloc implements Store, timing the allocation when observed.
func (s *Instrumented) Alloc() (int32, error) {
	o := s.hook.Observer()
	if o == nil {
		return s.Store.Alloc()
	}
	start := time.Now()
	addr, err := s.Store.Alloc()
	o.RecordOp(obs.OpAlloc, time.Since(start))
	return addr, err
}

// Free implements Store, timing the release when observed.
func (s *Instrumented) Free(addr int32) error {
	o := s.hook.Observer()
	if o == nil {
		return s.Store.Free(addr)
	}
	start := time.Now()
	err := s.Store.Free(addr)
	o.RecordOp(obs.OpFree, time.Since(start))
	return err
}

// Unwrapper is implemented by store wrappers (Instrumented, Cached,
// FaultStore) exposing the store they decorate.
type Unwrapper interface {
	Unwrap() Store
}

// Unwrap peels one wrapper layer off s, or returns nil when s is a base
// store.
func Unwrap(s Store) Store {
	if u, ok := s.(Unwrapper); ok {
		return u.Unwrap()
	}
	return nil
}

// AsCached returns the first *Cached in s's wrapper chain, or nil.
func AsCached(s Store) *Cached {
	for ; s != nil; s = Unwrap(s) {
		if c, ok := s.(*Cached); ok {
			return c
		}
	}
	return nil
}

// AsSharded returns the first *ShardedCache in s's wrapper chain, or nil.
func AsSharded(s Store) *ShardedCache {
	for ; s != nil; s = Unwrap(s) {
		if c, ok := s.(*ShardedCache); ok {
			return c
		}
	}
	return nil
}

// CachePool is the counter surface every buffer pool implementation
// (LRU Cached, CLOCK ShardedCache) exposes.
type CachePool interface {
	Hits() int64
	Misses() int64
}

// AsCachePool returns the first buffer pool in s's wrapper chain, or nil.
func AsCachePool(s Store) CachePool {
	for ; s != nil; s = Unwrap(s) {
		if c, ok := s.(CachePool); ok {
			return c
		}
	}
	return nil
}

// AsFileStore returns the first *FileStore in s's wrapper chain, or nil.
func AsFileStore(s Store) *FileStore {
	for ; s != nil; s = Unwrap(s) {
		if f, ok := s.(*FileStore); ok {
			return f
		}
	}
	return nil
}
