package store

import (
	"time"

	"triehash/internal/bucket"
	"triehash/internal/obs"
)

// Instrumented wraps a Store with per-operation latency recording into an
// obs.Hook's observer. It composes with the other wrappers (outermost in
// the stack, so cache hits and injected faults are timed too). With no
// observer attached each operation pays one atomic load and a branch —
// nothing else, and no allocation.
type Instrumented struct {
	Store
	viewer Viewer // s's ReadView when it has one, resolved once
	hook   *obs.Hook
}

// NewInstrumented wraps s; hook may be shared with other components.
func NewInstrumented(s Store, hook *obs.Hook) *Instrumented {
	i := &Instrumented{Store: s, hook: hook}
	i.viewer, _ = s.(Viewer)
	return i
}

// Unwrap returns the wrapped store.
func (s *Instrumented) Unwrap() Store { return s.Store }

// Read implements Store, timing the access when observed.
func (s *Instrumented) Read(addr int32) (*bucket.Bucket, error) {
	o := s.hook.Observer()
	if o == nil {
		return s.Store.Read(addr)
	}
	start := time.Now()
	b, err := s.Store.Read(addr)
	o.RecordOp(obs.OpRead, time.Since(start))
	return b, err
}

// ReadView implements Viewer, timing the access as a read. The view is
// served by the wrapped store's fast path when it has one (a cache hit
// skips the clone); wrapped stores without ReadView serve a plain Read,
// so the wrapper is always a Viewer without changing semantics. The
// inner Viewer is resolved at construction, not per call: this method
// sits on the zero-allocation Get hot path, where a repeated interface
// assertion is measurable.
func (s *Instrumented) ReadView(addr int32) (*bucket.Bucket, error) {
	o := s.hook.Observer()
	if o == nil {
		if s.viewer != nil {
			return s.viewer.ReadView(addr)
		}
		return s.Store.Read(addr)
	}
	start := time.Now()
	var b *bucket.Bucket
	var err error
	if s.viewer != nil {
		b, err = s.viewer.ReadView(addr)
	} else {
		b, err = s.Store.Read(addr)
	}
	o.RecordOp(obs.OpRead, time.Since(start))
	return b, err
}

// Write implements Store, timing the access when observed.
func (s *Instrumented) Write(addr int32, b *bucket.Bucket) error {
	o := s.hook.Observer()
	if o == nil {
		return s.Store.Write(addr, b)
	}
	start := time.Now()
	err := s.Store.Write(addr, b)
	o.RecordOp(obs.OpWrite, time.Since(start))
	return err
}

// Alloc implements Store, timing the allocation when observed.
func (s *Instrumented) Alloc() (int32, error) {
	o := s.hook.Observer()
	if o == nil {
		return s.Store.Alloc()
	}
	start := time.Now()
	addr, err := s.Store.Alloc()
	o.RecordOp(obs.OpAlloc, time.Since(start))
	return addr, err
}

// Free implements Store, timing the release when observed.
func (s *Instrumented) Free(addr int32) error {
	o := s.hook.Observer()
	if o == nil {
		return s.Store.Free(addr)
	}
	start := time.Now()
	err := s.Store.Free(addr)
	o.RecordOp(obs.OpFree, time.Since(start))
	return err
}

// Unwrapper is implemented by store wrappers (Instrumented, Cached,
// FaultStore) exposing the store they decorate.
type Unwrapper interface {
	Unwrap() Store
}

// Unwrap peels one wrapper layer off s, or returns nil when s is a base
// store.
func Unwrap(s Store) Store {
	if u, ok := s.(Unwrapper); ok {
		return u.Unwrap()
	}
	return nil
}

// AsCached returns the first *Cached in s's wrapper chain, or nil.
func AsCached(s Store) *Cached {
	for ; s != nil; s = Unwrap(s) {
		if c, ok := s.(*Cached); ok {
			return c
		}
	}
	return nil
}

// AsSharded returns the first *ShardedCache in s's wrapper chain, or nil.
func AsSharded(s Store) *ShardedCache {
	for ; s != nil; s = Unwrap(s) {
		if c, ok := s.(*ShardedCache); ok {
			return c
		}
	}
	return nil
}

// CachePool is the counter surface every buffer pool implementation
// (LRU Cached, CLOCK ShardedCache) exposes.
type CachePool interface {
	Hits() int64
	Misses() int64
}

// AsCachePool returns the first buffer pool in s's wrapper chain, or nil.
func AsCachePool(s Store) CachePool {
	for ; s != nil; s = Unwrap(s) {
		if c, ok := s.(CachePool); ok {
			return c
		}
	}
	return nil
}

// AsFileStore returns the first *FileStore in s's wrapper chain, or nil.
func AsFileStore(s Store) *FileStore {
	for ; s != nil; s = Unwrap(s) {
		if f, ok := s.(*FileStore); ok {
			return f
		}
	}
	return nil
}
