package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"triehash/internal/bucket"
)

func TestShardedContract(t *testing.T) {
	storeContract(t, NewSharded(NewMem(), 16, 4), true)
}

func TestShardedSingleFrame(t *testing.T) {
	storeContract(t, NewSharded(NewMem(), 1, 8), true)
}

func TestShardedGeometry(t *testing.T) {
	for _, tc := range []struct {
		frames, shards, wantShards int
	}{
		{16, 4, 4},
		{16, 3, 4},   // rounded up to a power of two
		{4, 16, 4},   // shards capped at frames
		{1000, 5, 8}, // rounded up
	} {
		c := NewSharded(NewMem(), tc.frames, tc.shards)
		if c.Shards() != tc.wantShards {
			t.Errorf("NewSharded(frames=%d, shards=%d).Shards() = %d, want %d",
				tc.frames, tc.shards, c.Shards(), tc.wantShards)
		}
		if c.Frames() < tc.frames {
			t.Errorf("NewSharded(frames=%d, shards=%d).Frames() = %d, want >= frames",
				tc.frames, tc.shards, c.Frames())
		}
	}
}

// fillStore allocates n buckets, each holding one record keyed by its
// address, and returns the pool-wrapped store.
func fillStore(t *testing.T, c *ShardedCache, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		addr, err := c.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		b := bucket.New(4)
		b.Put(fmt.Sprintf("k%d", addr), []byte{byte(addr)})
		if err := c.Write(addr, b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestShardedEvictionAndCounters(t *testing.T) {
	c := NewSharded(NewMem(), 4, 2)
	fillStore(t, c, 16) // 4x the pool: writes must evict
	if c.Evictions() == 0 {
		t.Fatal("filling 16 buckets through a 4-frame pool evicted nothing")
	}
	// Every bucket is still readable (write-through), and the counters add
	// up: reads either hit or miss, never both. Each address is read twice
	// in a row — the second read must find the frame the first installed.
	c.ResetCounters()
	for addr := int32(0); addr < 16; addr++ {
		for rep := 0; rep < 2; rep++ {
			b, err := c.Read(addr)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := b.Get(fmt.Sprintf("k%d", addr)); !ok {
				t.Fatalf("bucket %d lost its record through the pool", addr)
			}
		}
	}
	if got := c.Hits() + c.Misses(); got != 32 {
		t.Fatalf("hits+misses = %d, want 32", got)
	}
	if c.Hits() < 16 {
		t.Fatalf("hits = %d, want >= 16 (every repeated read must hit)", c.Hits())
	}
	// Per-shard stats sum to the totals.
	var hits, misses, evictions int64
	for _, s := range c.ShardStats() {
		hits += s.Hits
		misses += s.Misses
		evictions += s.Evictions
	}
	if hits != c.Hits() || misses != c.Misses() || evictions != c.Evictions() {
		t.Fatalf("ShardStats sums (%d,%d,%d) != totals (%d,%d,%d)",
			hits, misses, evictions, c.Hits(), c.Misses(), c.Evictions())
	}
}

func TestShardedSecondChance(t *testing.T) {
	// One shard, two frames: referencing a frame must save it from the
	// next eviction (that is the CLOCK property).
	c := NewSharded(NewMem(), 2, 1)
	fillStore(t, c, 2) // addrs 0, 1 resident
	c.ResetCounters()
	if _, err := c.Read(0); err != nil { // sets 0's reference bit
		t.Fatal(err)
	}
	if c.Hits() != 1 {
		t.Fatalf("hits = %d, want 1 (addrs 0 and 1 resident)", c.Hits())
	}
	// A third bucket forces an eviction; both bits were set by install and
	// the hand clears them in one lap, so this alone does not prove the
	// bit matters — re-read 0 and 1 to observe who survived.
	addr, err := c.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	b := bucket.New(4)
	b.Put("k2", nil)
	if err := c.Write(addr, b); err != nil {
		t.Fatal(err)
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
}

func TestShardedReadViewSharesSnapshot(t *testing.T) {
	c := NewSharded(NewMem(), 8, 2)
	fillStore(t, c, 4)
	// Two views of a resident bucket are the same snapshot (no clone) …
	v1, err := c.ReadView(1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.ReadView(1)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("ReadView cloned a resident bucket")
	}
	// … while Read returns an owned copy.
	r, err := c.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if r == v1 {
		t.Fatal("Read returned the shared snapshot")
	}
	// A write replaces the snapshot; held views keep the old contents.
	nb := bucket.New(4)
	nb.Put("new", nil)
	if err := c.Write(1, nb); err != nil {
		t.Fatal(err)
	}
	if _, ok := v1.Get("new"); ok {
		t.Fatal("a held view observed a later write: snapshot mutated in place")
	}
	v3, err := c.ReadView(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v3.Get("new"); !ok {
		t.Fatal("a fresh view missed the write-through")
	}
}

func TestShardedReadViewZeroAlloc(t *testing.T) {
	c := NewSharded(NewMem(), 8, 2)
	fillStore(t, c, 4)
	for addr := int32(0); addr < 4; addr++ {
		if _, err := c.ReadView(addr); err != nil { // warm
			t.Fatal(err)
		}
	}
	var sink *bucket.Bucket
	allocs := testing.AllocsPerRun(200, func() {
		b, err := c.ReadView(2)
		if err != nil {
			t.Fatal(err)
		}
		sink = b
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("ReadView hit allocates %v objects/op, want 0", allocs)
	}
}

func TestShardedMissFillKeepsNewerWrite(t *testing.T) {
	// A miss-fill must not bury a write that raced past it: install with
	// overwrite=false keeps the resident frame.
	c := NewSharded(NewMem(), 8, 1)
	fillStore(t, c, 1)
	sh := c.shard(0)
	stale := bucket.New(4)
	stale.Put("stale", nil)
	sh.install(0, stale, false)
	v, err := c.ReadView(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.Get("stale"); ok {
		t.Fatal("miss-fill replaced a resident (newer) frame")
	}
}

func TestShardedFreeDropsFrame(t *testing.T) {
	c := NewSharded(NewMem(), 8, 2)
	fillStore(t, c, 4)
	if err := c.Free(3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(3); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("read of freed bucket through the pool: %v", err)
	}
	// The dead frame's slot is reclaimed by later traffic: reallocating
	// and rewriting the address serves the new contents.
	fillStore(t, c, 8) // reuses addr 3 first
	b, err := c.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get("k3"); !ok {
		t.Fatal("reallocated bucket not served after its frame was dropped")
	}
}

// TestShardedStress is the race-detector workout: concurrent readers,
// writers, and allocation churn across every shard, with a pool small
// enough that the CLOCK hands run constantly. Invariant checked by the
// readers: a bucket always contains exactly its own key (writers only
// ever append generation values under that key).
func TestShardedStress(t *testing.T) {
	const (
		buckets = 32
		frames  = 8
		ops     = 3000
	)
	c := NewSharded(NewMem(), frames, 4)
	for i := 0; i < buckets; i++ {
		addr, err := c.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		b := bucket.New(2)
		b.Put(fmt.Sprintf("k%d", addr), []byte{0})
		if err := c.Write(addr, b); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	fail := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				addr := rng.Int31n(buckets)
				key := fmt.Sprintf("k%d", addr)
				switch rng.Intn(4) {
				case 0: // write-through a new generation
					b := bucket.New(2)
					b.Put(key, []byte{byte(i)})
					if err := c.Write(addr, b); err != nil {
						select {
						case fail <- fmt.Sprintf("write %d: %v", addr, err):
						default:
						}
						return
					}
				case 1: // owned read
					b, err := c.Read(addr)
					if err == nil {
						if _, ok := b.Get(key); !ok {
							select {
							case fail <- fmt.Sprintf("bucket %d missing %s", addr, key):
							default:
							}
							return
						}
						b.Put("scribble", nil) // owned: must not leak into the pool
					}
				case 2: // shared view (read-only contract)
					b, err := c.ReadView(addr)
					if err == nil {
						if _, ok := b.Get(key); !ok {
							select {
							case fail <- fmt.Sprintf("view of %d missing %s", addr, key):
							default:
							}
							return
						}
					}
				case 3: // counter polling races the data path
					_ = c.Hits() + c.Misses() + c.Evictions()
				}
			}
		}(int64(w) * 7919)
	}
	wg.Wait()
	close(fail)
	if msg, ok := <-fail; ok {
		t.Fatal(msg)
	}
	// After the dust settles every bucket must hold exactly its own key
	// and no scribbles leaked into the pool.
	for addr := int32(0); addr < buckets; addr++ {
		b, err := c.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := b.Get(fmt.Sprintf("k%d", addr)); !ok {
			t.Fatalf("bucket %d lost its key", addr)
		}
		if _, ok := b.Get("scribble"); ok {
			t.Fatalf("caller mutation of an owned read leaked into bucket %d", addr)
		}
	}
}

func TestAsCachePool(t *testing.T) {
	lru := NewCached(NewMem(), 4)
	clock := NewSharded(NewMem(), 4, 2)
	if AsCachePool(NewInstrumented(lru, nil)) == nil {
		t.Fatal("AsCachePool missed the LRU pool through a wrapper")
	}
	if AsCachePool(NewInstrumented(clock, nil)) == nil {
		t.Fatal("AsCachePool missed the CLOCK pool through a wrapper")
	}
	if AsCachePool(NewMem()) != nil {
		t.Fatal("AsCachePool found a pool in a bare store")
	}
	if AsSharded(NewInstrumented(clock, nil)) != clock {
		t.Fatal("AsSharded missed the pool through a wrapper")
	}
}
