package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"

	"triehash/internal/bucket"
	"triehash/internal/format"
)

// FileStore persists buckets in a single file of fixed-size slots, one per
// bucket address. Each slot carries a checksummed header, so torn or
// corrupted slots are detected at read time and surface as CorruptError.
// The layout mirrors the paper's disk model: one slot transfer per bucket
// access.
//
// Layout:
//
//	file header (32 bytes): magic, version, slot size, capacity hint
//	slot k at offset 32 + k*slotSize:
//	    flags (1), payload length (4), crc32 of payload (4), payload
//
// The capacity hint records the file's bucket capacity b redundantly, so
// salvage (OpenAt's fallback reconstruction) can rebuild a file whose
// metadata is lost without being told b. Zero (files written before the
// hint existed) means "unknown"; the salvage path then infers b from the
// fullest surviving bucket.
// FileStore is safe for concurrent use: reads and writes of distinct
// slots are independent positioned I/O, the slot count is atomic, and the
// allocator bookkeeping (free list, live count) is mutex-guarded.
// Concurrent operations on the *same* slot need external coordination
// (the engine's per-bucket latches) — the store does not order them.
type FileStore struct {
	f        *os.File
	slotSize int
	hint     int          // capacity hint from the header; 0 = unknown
	slots    atomic.Int32 // slots present in the file (allocated + freed)
	mu       sync.Mutex   // guards free and live
	free     []int32
	live     int
	ctr      counterSet
	// fmtv is the page encoding version writes use (reads accept either);
	// 0 means format.Default. Set before the store is shared.
	fmtv format.Version
}

const (
	fileMagic      = 0x54484653 // "THFS"
	fileVersion    = 1
	fileHeaderSize = 32
	slotHeaderSize = 9
	slotLive       = 1
	slotFree       = 0
)

// CreateFile creates (truncating) a bucket file at path whose slots hold
// serialized buckets of up to slotSize-9 bytes.
func CreateFile(path string, slotSize int) (*FileStore, error) {
	if slotSize <= slotHeaderSize+4 {
		return nil, fmt.Errorf("store: slot size %d too small", slotSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [fileHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(slotSize))
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	return &FileStore{f: f, slotSize: slotSize}, nil
}

// OpenFile opens an existing bucket file, rebuilding the free list by
// scanning slot headers.
func OpenFile(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	var hdr [fileHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: reading file header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("store: %s is not a bucket file", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != fileVersion {
		f.Close()
		return nil, fmt.Errorf("store: unsupported version %d", v)
	}
	s := &FileStore{
		f:        f,
		slotSize: int(binary.LittleEndian.Uint32(hdr[8:])),
		hint:     int(binary.LittleEndian.Uint32(hdr[12:])),
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s.slots.Store(int32((st.Size() - fileHeaderSize) / int64(s.slotSize)))
	for k := int32(0); k < s.slots.Load(); k++ {
		var sh [slotHeaderSize]byte
		if _, err := f.ReadAt(sh[:], s.offset(k)); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: scanning slot %d: %w", k, err)
		}
		if sh[0] == slotLive {
			s.live++
		} else {
			s.free = append(s.free, k)
		}
	}
	return s, nil
}

func (s *FileStore) offset(addr int32) int64 {
	return fileHeaderSize + int64(addr)*int64(s.slotSize)
}

// SlotSize returns the configured slot size.
func (s *FileStore) SlotSize() int { return s.slotSize }

// PayloadSize returns the bytes of each slot available to a bucket's
// encoding — the byte budget persistent engines gate writes on.
func (s *FileStore) PayloadSize() int { return s.slotSize - slotHeaderSize }

// SetFormat selects the page encoding version Write and Alloc use; reads
// accept either version regardless. Call before the store is shared.
func (s *FileStore) SetFormat(v format.Version) {
	if v.Valid() {
		s.fmtv = v
	}
}

// Format returns the page encoding version writes use.
func (s *FileStore) Format() format.Version {
	if s.fmtv == 0 {
		return format.Default
	}
	return s.fmtv
}

// CapacityHint returns the bucket capacity recorded in the file header, or
// 0 when the file predates the hint.
func (s *FileStore) CapacityHint() int { return s.hint }

// SetCapacityHint records the bucket capacity b in the file header — the
// redundancy that lets salvage rebuild the file without its metadata.
func (s *FileStore) SetCapacityHint(b int) error {
	if b < 0 {
		return fmt.Errorf("store: negative capacity hint %d", b)
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(b))
	if _, err := s.f.WriteAt(buf[:], 12); err != nil {
		return err
	}
	s.hint = b
	return nil
}

func (s *FileStore) readSlot(addr int32) (flags byte, payload []byte, err error) {
	if n := s.slots.Load(); addr < 0 || addr >= n {
		return 0, nil, fmt.Errorf("%w: slot %d of %d", ErrNotAllocated, addr, n)
	}
	buf := make([]byte, s.slotSize)
	if _, err := s.f.ReadAt(buf, s.offset(addr)); err != nil {
		return 0, nil, fmt.Errorf("store: slot %d: %w", addr, err)
	}
	flags = buf[0]
	if flags != slotLive && flags != slotFree {
		return 0, nil, &CorruptError{Addr: addr, Reason: fmt.Sprintf("invalid slot flags 0x%02x", flags)}
	}
	n := int(binary.LittleEndian.Uint32(buf[1:]))
	if n > s.slotSize-slotHeaderSize {
		return 0, nil, &CorruptError{Addr: addr, Reason: fmt.Sprintf("corrupt length %d", n)}
	}
	sum := binary.LittleEndian.Uint32(buf[5:])
	payload = buf[slotHeaderSize : slotHeaderSize+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, &CorruptError{Addr: addr, Reason: "checksum mismatch"}
	}
	return flags, payload, nil
}

func (s *FileStore) writeSlot(addr int32, flags byte, payload []byte) error {
	if len(payload) > s.slotSize-slotHeaderSize {
		return fmt.Errorf("store: bucket of %d bytes exceeds slot payload %d", len(payload), s.slotSize-slotHeaderSize)
	}
	buf := make([]byte, s.slotSize)
	buf[0] = flags
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[5:], crc32.ChecksumIEEE(payload))
	copy(buf[slotHeaderSize:], payload)
	_, err := s.f.WriteAt(buf, s.offset(addr))
	return err
}

// Read implements Store.
func (s *FileStore) Read(addr int32) (*bucket.Bucket, error) {
	flags, payload, err := s.readSlot(addr)
	if err != nil {
		return nil, err
	}
	if flags != slotLive {
		return nil, fmt.Errorf("%w: read of freed slot %d", ErrNotAllocated, addr)
	}
	s.ctr.reads.Add(1)
	b, _, err := bucket.DecodeBinary(payload)
	if err != nil {
		// A future build's page is intact, not corrupt: surface the version
		// refusal as-is so callers never try to repair it.
		var uve *format.UnknownVersionError
		if errors.As(err, &uve) {
			return nil, err
		}
		return nil, &CorruptError{Addr: addr, Reason: fmt.Sprintf("payload decode: %v", err)}
	}
	format.RecordPageRead(b.DecodedFormat())
	return b, nil
}

// Write implements Store.
func (s *FileStore) Write(addr int32, b *bucket.Bucket) error {
	flags, _, err := s.readSlot(addr)
	if err != nil {
		return err
	}
	if flags != slotLive {
		return fmt.Errorf("%w: write of freed slot %d", ErrNotAllocated, addr)
	}
	s.ctr.writes.Add(1)
	v := s.Format()
	payload := b.AppendFormat(nil, v)
	format.RecordPageWrite(v, len(payload), b.Bytes())
	return s.writeSlot(addr, slotLive, payload)
}

// Alloc implements Store.
func (s *FileStore) Alloc() (int32, error) {
	s.ctr.allocs.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	var addr int32
	if n := len(s.free); n > 0 {
		addr = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		addr = s.slots.Load()
		s.slots.Store(addr + 1)
	}
	if err := s.writeSlot(addr, slotLive, bucket.New(0).AppendFormat(nil, s.Format())); err != nil {
		return 0, err
	}
	s.live++
	return addr, nil
}

// Free implements Store.
func (s *FileStore) Free(addr int32) error {
	flags, _, err := s.readSlot(addr)
	if err != nil {
		return err
	}
	if flags != slotLive {
		return fmt.Errorf("%w: double free of slot %d", ErrNotAllocated, addr)
	}
	if err := s.writeSlot(addr, slotFree, nil); err != nil {
		return err
	}
	s.ctr.frees.Add(1)
	s.mu.Lock()
	s.live--
	s.free = append(s.free, addr)
	s.mu.Unlock()
	return nil
}

// ReadRaw implements RawReader: the slot's bytes exactly as stored, no
// checksum verification — what Scrub preserves in the quarantine file.
func (s *FileStore) ReadRaw(addr int32) ([]byte, error) {
	if n := s.slots.Load(); addr < 0 || addr >= n {
		return nil, fmt.Errorf("%w: raw read of slot %d of %d", ErrNotAllocated, addr, n)
	}
	buf := make([]byte, s.slotSize)
	if _, err := s.f.ReadAt(buf, s.offset(addr)); err != nil {
		return nil, fmt.Errorf("store: slot %d: %w", addr, err)
	}
	return buf, nil
}

// inFree reports whether addr is already on the free list.
func (s *FileStore) inFree(addr int32) bool {
	for _, a := range s.free {
		if a == addr {
			return true
		}
	}
	return false
}

// ClearSlot implements SlotClearer: the slot is marked free regardless of
// its content. Free refuses a slot that no longer reads back; this is the
// release path for quarantined slots (their bytes already preserved).
func (s *FileStore) ClearSlot(addr int32) error {
	if n := s.slots.Load(); addr < 0 || addr >= n {
		return fmt.Errorf("%w: clear of slot %d of %d", ErrNotAllocated, addr, n)
	}
	if err := s.writeSlot(addr, slotFree, nil); err != nil {
		return err
	}
	// Bookkeeping follows the in-memory classification (live iff not on
	// the free list), which OpenFile derived from the flags and which
	// stays self-consistent even when the on-disk flags were damaged.
	s.mu.Lock()
	if !s.inFree(addr) {
		s.live--
		s.free = append(s.free, addr)
	}
	s.mu.Unlock()
	return nil
}

// CorruptSlot implements Corrupter: it damages addr in place, simulating
// the dirty failure modes a power cut or decaying medium produces. The
// damaged offset and bit derive deterministically from seed, so crash
// tests replay exactly. Allocator bookkeeping is intentionally left
// untouched — the corruption is silent until a read or reopen finds it,
// which is the scenario under test.
func (s *FileStore) CorruptSlot(addr int32, kind CorruptKind, seed int64) error {
	if n := s.slots.Load(); addr < 0 || addr >= n {
		return fmt.Errorf("%w: corrupt of slot %d of %d", ErrNotAllocated, addr, n)
	}
	buf := make([]byte, s.slotSize)
	if _, err := s.f.ReadAt(buf, s.offset(addr)); err != nil {
		return fmt.Errorf("store: slot %d: %w", addr, err)
	}
	if err := damageFrame(buf, kind, corruptMix(seed, addr)); err != nil {
		return err
	}
	_, err := s.f.WriteAt(buf, s.offset(addr))
	return err
}

// Buckets implements Store.
func (s *FileStore) Buckets() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// MaxAddr implements Store.
func (s *FileStore) MaxAddr() int32 { return s.slots.Load() }

// Counters implements Store.
func (s *FileStore) Counters() Counters { return s.ctr.snapshot() }

// ResetCounters implements Store.
func (s *FileStore) ResetCounters() { s.ctr.reset() }

// Sync flushes the file to stable storage.
func (s *FileStore) Sync() error { return s.f.Sync() }

// Close implements Store.
func (s *FileStore) Close() error {
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
