package store

import (
	"runtime"
	"sync"
	"sync/atomic"

	"triehash/internal/bucket"
	"triehash/internal/obs"
)

// ShardedCache is a write-through buffer pool of bucket frames partitioned
// into power-of-two shards (shard = addr & mask), each an independent
// CLOCK (second chance) ring. Where the LRU pool (Cached) funnels every
// hit through one global mutex to reorder a linked list, a CLOCK hit only
// sets the frame's reference bit — one atomic store under a shard-local
// read lock, with no list manipulation and no cross-shard contention — so
// read throughput scales with the number of shards.
//
// Frames hold immutable bucket snapshots: a Write or miss-fill installs a
// fresh copy and never mutates one in place. That is what lets ReadView
// hand hits out without cloning (the zero-allocation read path); Read
// keeps the Store contract and clones.
type ShardedCache struct {
	Store
	mask   int32
	shards []clockShard

	// hook reports hits, misses and evictions to an attached observer
	// (nil = off).
	hook *obs.Hook
}

// clockShard is one independent CLOCK ring plus its addr index.
type clockShard struct {
	mu     sync.RWMutex
	byAddr map[int32]*clockFrame
	ring   []*clockFrame // grows up to frames, then the hand sweeps
	frames int           // ring capacity
	hand   int

	hits, misses, evictions atomic.Int64
}

// clockFrame is one buffer frame. addr and b change only under the
// shard's write lock; ref is the CLOCK reference bit, set by hits under
// the shard's read lock.
type clockFrame struct {
	addr int32
	ref  atomic.Uint32
	b    atomic.Pointer[bucket.Bucket] // immutable snapshot
}

// frameFree marks a frame whose bucket was freed; the slot is reclaimed
// by the next sweep that reaches it.
const frameFree int32 = -1

// NewSharded wraps s with a sharded CLOCK pool of the given total number
// of frames. shards is rounded up to a power of two; shards <= 0 selects
// 2*GOMAXPROCS (the contention the pool exists to spread). Every shard
// holds at least one frame.
func NewSharded(s Store, frames, shards int) *ShardedCache {
	if frames < 1 {
		frames = 1
	}
	if shards <= 0 {
		shards = 2 * runtime.GOMAXPROCS(0)
	}
	if shards > frames {
		shards = frames
	}
	n := 1
	for n < shards && n < 256 {
		n <<= 1
	}
	perShard := (frames + n - 1) / n
	c := &ShardedCache{Store: s, mask: int32(n - 1), shards: make([]clockShard, n)}
	for i := range c.shards {
		c.shards[i].frames = perShard
		c.shards[i].byAddr = make(map[int32]*clockFrame, perShard)
	}
	return c
}

// SetObsHook attaches the observability hook hit/miss/evict events go to.
func (c *ShardedCache) SetObsHook(h *obs.Hook) { c.hook = h }

// Unwrap returns the wrapped store.
func (c *ShardedCache) Unwrap() Store { return c.Store }

// Shards returns the number of shards (a power of two).
func (c *ShardedCache) Shards() int { return len(c.shards) }

// Frames returns the pool's total frame capacity.
func (c *ShardedCache) Frames() int { return len(c.shards) * c.shards[0].frames }

// Hits returns the number of reads served from the pool.
func (c *ShardedCache) Hits() int64 { return c.sum(func(s *clockShard) int64 { return s.hits.Load() }) }

// Misses returns the number of reads forwarded to the store.
func (c *ShardedCache) Misses() int64 {
	return c.sum(func(s *clockShard) int64 { return s.misses.Load() })
}

// Evictions returns the number of frames the CLOCK hands have reclaimed.
func (c *ShardedCache) Evictions() int64 {
	return c.sum(func(s *clockShard) int64 { return s.evictions.Load() })
}

func (c *ShardedCache) sum(f func(*clockShard) int64) int64 {
	var t int64
	for i := range c.shards {
		t += f(&c.shards[i])
	}
	return t
}

// ShardStats is one shard's counter snapshot.
type ShardStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// ShardStats returns per-shard hit/miss/eviction counters, index = shard.
func (c *ShardedCache) ShardStats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		out[i] = ShardStats{Hits: s.hits.Load(), Misses: s.misses.Load(), Evictions: s.evictions.Load()}
	}
	return out
}

// ResetCounters implements Store, additionally zeroing the pool's hit,
// miss and eviction counters so every counter family resets together.
func (c *ShardedCache) ResetCounters() {
	for i := range c.shards {
		s := &c.shards[i]
		s.hits.Store(0)
		s.misses.Store(0)
		s.evictions.Store(0)
	}
	c.Store.ResetCounters()
}

func (c *ShardedCache) shard(addr int32) *clockShard { return &c.shards[addr&c.mask] }

// lookup serves a hit: the frame's snapshot pointer plus one reference-bit
// store, under the shard's shared lock.
func (sh *clockShard) lookup(addr int32) (*bucket.Bucket, bool) {
	sh.mu.RLock()
	fr, ok := sh.byAddr[addr]
	if !ok {
		sh.mu.RUnlock()
		return nil, false
	}
	b := fr.b.Load()
	fr.ref.Store(1)
	sh.mu.RUnlock()
	return b, true
}

// install places an immutable snapshot for addr in the shard, running the
// CLOCK hand when the ring is full. It returns the evicted address and
// whether an eviction happened. overwrite distinguishes write-through
// installs (always newest, replace) from miss-fills (a frame already
// present was installed by a racing write and is at least as new; keep
// it, so a slow miss can never bury fresher contents).
func (sh *clockShard) install(addr int32, b *bucket.Bucket, overwrite bool) (int32, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fr, ok := sh.byAddr[addr]; ok {
		if overwrite {
			fr.b.Store(b)
		}
		fr.ref.Store(1)
		return 0, false
	}
	if len(sh.ring) < sh.frames {
		fr := &clockFrame{addr: addr}
		fr.b.Store(b)
		fr.ref.Store(1)
		sh.ring = append(sh.ring, fr)
		sh.byAddr[addr] = fr
		return 0, false
	}
	// Second chance sweep: a set reference bit buys one lap; the first
	// clear frame is the victim. Hits are blocked by the write lock, so
	// the sweep finds a victim within two laps.
	for {
		fr := sh.ring[sh.hand]
		sh.hand++
		if sh.hand == len(sh.ring) {
			sh.hand = 0
		}
		if fr.ref.Swap(0) != 0 {
			continue
		}
		victim := fr.addr
		delete(sh.byAddr, victim)
		fr.addr = addr
		fr.b.Store(b)
		fr.ref.Store(1)
		sh.byAddr[addr] = fr
		if victim == frameFree {
			return 0, false
		}
		sh.evictions.Add(1)
		return victim, true
	}
}

// drop removes addr's frame (bucket freed); the ring slot stays and is
// reclaimed by the sweep.
func (sh *clockShard) drop(addr int32) {
	sh.mu.Lock()
	if fr, ok := sh.byAddr[addr]; ok {
		delete(sh.byAddr, addr)
		fr.addr = frameFree
		fr.ref.Store(0)
		fr.b.Store(nil)
	}
	sh.mu.Unlock()
}

// fill resolves a miss: one underlying read, one private snapshot
// installed. The owned copy is returned to the caller; the frame keeps
// its own clone so later caller mutations cannot reach the pool.
func (c *ShardedCache) fill(sh *clockShard, addr int32) (*bucket.Bucket, error) {
	sh.misses.Add(1)
	c.hook.Observer().Emit(obs.Event{Type: obs.EvCacheMiss, Addr: addr})
	b, err := c.Store.Read(addr)
	if err != nil {
		return nil, err
	}
	if victim, evicted := sh.install(addr, b.Clone(), false); evicted {
		c.hook.Observer().Emit(obs.Event{Type: obs.EvCacheEvict, Addr: victim})
	}
	return b, nil
}

// Read implements Store, serving hits from the pool. The returned bucket
// is owned by the caller (hits are cloned outside any lock).
func (c *ShardedCache) Read(addr int32) (*bucket.Bucket, error) {
	sh := c.shard(addr)
	if b, ok := sh.lookup(addr); ok {
		sh.hits.Add(1)
		c.hook.Observer().Emit(obs.Event{Type: obs.EvCacheHit, Addr: addr})
		return b.Clone(), nil
	}
	return c.fill(sh, addr)
}

// ReadView implements Viewer: a hit returns the frame's immutable
// snapshot directly — no clone, no allocation — under the read-only
// contract. A miss fills the frame and returns its snapshot.
func (c *ShardedCache) ReadView(addr int32) (*bucket.Bucket, error) {
	sh := c.shard(addr)
	if b, ok := sh.lookup(addr); ok {
		sh.hits.Add(1)
		c.hook.Observer().Emit(obs.Event{Type: obs.EvCacheHit, Addr: addr})
		return b, nil
	}
	b, err := c.fill(sh, addr)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// ReadViewTagged is ReadView plus the hit/miss verdict, so a span-carrying
// caller can charge the access to the cache-probe stage or the store-read
// stage. Semantics and cost are otherwise identical to ReadView.
func (c *ShardedCache) ReadViewTagged(addr int32) (*bucket.Bucket, bool, error) {
	sh := c.shard(addr)
	if b, ok := sh.lookup(addr); ok {
		sh.hits.Add(1)
		c.hook.Observer().Emit(obs.Event{Type: obs.EvCacheHit, Addr: addr})
		return b, true, nil
	}
	b, err := c.fill(sh, addr)
	if err != nil {
		return nil, false, err
	}
	return b, false, nil
}

// Write implements Store write-through: the pool and the backing store
// both receive the new contents.
func (c *ShardedCache) Write(addr int32, b *bucket.Bucket) error {
	if err := c.Store.Write(addr, b); err != nil {
		return err
	}
	if victim, evicted := c.shard(addr).install(addr, b.Clone(), true); evicted {
		c.hook.Observer().Emit(obs.Event{Type: obs.EvCacheEvict, Addr: victim})
	}
	return nil
}

// Free implements Store, evicting the freed bucket from the pool.
func (c *ShardedCache) Free(addr int32) error {
	c.shard(addr).drop(addr)
	return c.Store.Free(addr)
}

// Invalidate implements Invalidator, dropping addr's frame. Required when
// a slot changes beneath the pool (Scrub clearing a quarantined slot on
// the base store): a retained frame would resurrect the cleared bucket.
func (c *ShardedCache) Invalidate(addr int32) {
	c.shard(addr).drop(addr)
}
