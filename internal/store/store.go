// Package store provides bucket storage engines for trie hashing files.
//
// The paper's performance model counts bucket transfers between disk and
// main memory; every store therefore keeps exact access counters. MemStore
// simulates a disk in memory (the configuration used for all experiments),
// while FileStore persists buckets in a single slotted file with checksums,
// demonstrating the method against a real medium.
package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"triehash/internal/bucket"
)

// ErrNotAllocated is returned when reading or writing a bucket address
// that was never allocated (or has been freed).
var ErrNotAllocated = errors.New("store: bucket not allocated")

// Counters records the disk traffic a store has served. Reads and Writes
// count bucket transfers — the unit the paper's access costs are stated in.
type Counters struct {
	Reads  int64
	Writes int64
	Allocs int64
	Frees  int64
}

// Accesses returns the total number of bucket transfers.
func (c Counters) Accesses() int64 { return c.Reads + c.Writes }

// Sub returns the counter delta c - base.
func (c Counters) Sub(base Counters) Counters {
	return Counters{
		Reads:  c.Reads - base.Reads,
		Writes: c.Writes - base.Writes,
		Allocs: c.Allocs - base.Allocs,
		Frees:  c.Frees - base.Frees,
	}
}

func (c Counters) String() string {
	return fmt.Sprintf("reads=%d writes=%d allocs=%d frees=%d", c.Reads, c.Writes, c.Allocs, c.Frees)
}

// counterSet is the internal, atomically updated form of Counters, so
// concurrent readers (which stores must support) can count accesses
// without a lock.
type counterSet struct {
	reads, writes, allocs, frees atomic.Int64
}

func (c *counterSet) snapshot() Counters {
	return Counters{
		Reads:  c.reads.Load(),
		Writes: c.writes.Load(),
		Allocs: c.allocs.Load(),
		Frees:  c.frees.Load(),
	}
}

func (c *counterSet) reset() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.allocs.Store(0)
	c.frees.Store(0)
}

// Store is the bucket I/O interface of the file layer. Addresses are the
// paper's bucket numbers 0, 1, 2, ...; Alloc returns the smallest free
// address, preferring previously freed ones.
type Store interface {
	// Read fetches bucket addr. The returned bucket is owned by the
	// caller; mutations are not visible until Write.
	Read(addr int32) (*bucket.Bucket, error)
	// Write stores bucket b at addr.
	Write(addr int32, b *bucket.Bucket) error
	// Alloc reserves a new bucket address holding an empty bucket.
	Alloc() (int32, error)
	// Free releases addr for reuse.
	Free(addr int32) error
	// Buckets returns the number of currently allocated buckets.
	Buckets() int
	// MaxAddr returns one past the highest address ever allocated (the
	// paper's N+1 when nothing was freed).
	MaxAddr() int32
	// Counters returns the accumulated access counters.
	Counters() Counters
	// ResetCounters zeroes the access counters.
	ResetCounters()
	// Close releases the store's resources.
	Close() error
}

// Viewer is the optional clone-free read path of a store: ReadView
// returns a bucket the caller must treat as immutable. Implementations
// guarantee the returned snapshot is never mutated in place — a later
// Write replaces it — so read-only operations (Get, Range) can skip the
// defensive copy Read makes. View falls back to Read for stores without
// the fast path.
type Viewer interface {
	// ReadView fetches bucket addr as a shared read-only snapshot. The
	// caller must not mutate it.
	ReadView(addr int32) (*bucket.Bucket, error)
}

// View reads bucket addr through the cheapest path s offers: ReadView
// where implemented (no clone), Read otherwise. The returned bucket must
// be treated as read-only.
func View(s Store, addr int32) (*bucket.Bucket, error) {
	if v, ok := s.(Viewer); ok {
		return v.ReadView(addr)
	}
	return s.Read(addr)
}

// MemStore is an in-memory simulated disk. It deep-copies buckets on Read
// and Write so that, exactly like a real disk, mutations become visible
// only through an explicit Write — keeping the access discipline of the
// file layer honest. All methods are safe for concurrent use (a sharded
// buffer pool forwards misses and write-throughs from many goroutines at
// once): structural state is guarded by an RWMutex, and stored buckets
// are never mutated in place, so ReadView can hand out shared snapshots
// under the read lock.
type MemStore struct {
	mu    sync.RWMutex
	slots []*bucket.Bucket // nil = free slot
	// corrupt marks slots whose accesses must fail with a CorruptError —
	// MemStore's byte-free equivalent of a torn or decayed slot, planted
	// by CorruptSlot so corruption-recovery paths are testable without a
	// real file. Like FileStore (which verifies a slot's flags before
	// overwriting or freeing it), writes and frees of a corrupt slot fail
	// too; ClearSlot is the only way out, exactly the salvage discipline.
	corrupt map[int32]string
	free    []int32
	live    int
	ctr     counterSet
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore { return &MemStore{} }

// slot returns the bucket at addr under the caller's lock.
func (s *MemStore) slot(addr int32, op string) (*bucket.Bucket, error) {
	if int(addr) >= len(s.slots) || addr < 0 || s.slots[addr] == nil {
		return nil, fmt.Errorf("%w: %s of %d", ErrNotAllocated, op, addr)
	}
	if reason, ok := s.corrupt[addr]; ok {
		return nil, &CorruptError{Addr: addr, Reason: reason}
	}
	return s.slots[addr], nil
}

// Read implements Store.
func (s *MemStore) Read(addr int32) (*bucket.Bucket, error) {
	s.mu.RLock()
	b, err := s.slot(addr, "read")
	s.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	s.ctr.reads.Add(1)
	return b.Clone(), nil
}

// ReadView implements Viewer: the slot's bucket is returned directly —
// safe because MemStore never mutates a stored bucket in place (Write
// replaces the slot with a fresh clone) — and the access still counts as
// one transfer.
func (s *MemStore) ReadView(addr int32) (*bucket.Bucket, error) {
	s.mu.RLock()
	b, err := s.slot(addr, "read")
	s.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	s.ctr.reads.Add(1)
	return b, nil
}

// Write implements Store.
func (s *MemStore) Write(addr int32, b *bucket.Bucket) error {
	c := b.Clone()
	s.mu.Lock()
	if _, err := s.slot(addr, "write"); err != nil {
		s.mu.Unlock()
		return err
	}
	s.slots[addr] = c
	s.mu.Unlock()
	s.ctr.writes.Add(1)
	return nil
}

// Alloc implements Store.
func (s *MemStore) Alloc() (int32, error) {
	s.ctr.allocs.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live++
	if n := len(s.free); n > 0 {
		addr := s.free[n-1]
		s.free = s.free[:n-1]
		s.slots[addr] = bucket.New(0)
		return addr, nil
	}
	s.slots = append(s.slots, bucket.New(0))
	return int32(len(s.slots) - 1), nil
}

// Free implements Store.
func (s *MemStore) Free(addr int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.slot(addr, "free"); err != nil {
		return err
	}
	s.ctr.frees.Add(1)
	s.live--
	s.slots[addr] = nil
	s.free = append(s.free, addr)
	return nil
}

// Buckets implements Store.
func (s *MemStore) Buckets() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

// MaxAddr implements Store.
func (s *MemStore) MaxAddr() int32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int32(len(s.slots))
}

// CorruptSlot implements Corrupter: the slot's reads (and writes/frees,
// which verify the slot first) fail with a CorruptError until the slot is
// cleared. CorruptZero silently drops the slot instead — it reads back as
// never allocated, the byte-level outcome of a zeroed header. seed is
// unused: MemStore stores no bytes, so there is no offset to choose.
func (s *MemStore) CorruptSlot(addr int32, kind CorruptKind, seed int64) error {
	_ = seed
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(addr) >= len(s.slots) || addr < 0 || s.slots[addr] == nil {
		return fmt.Errorf("%w: corrupt of %d", ErrNotAllocated, addr)
	}
	if kind == CorruptZero {
		s.live--
		s.slots[addr] = nil
		s.free = append(s.free, addr)
		delete(s.corrupt, addr)
		return nil
	}
	if s.corrupt == nil {
		s.corrupt = make(map[int32]string)
	}
	s.corrupt[addr] = fmt.Sprintf("injected %s", kind)
	return nil
}

// ClearSlot implements SlotClearer: the slot is released regardless of its
// corruption marker — the quarantine step of Scrub.
func (s *MemStore) ClearSlot(addr int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(addr) >= len(s.slots) || addr < 0 {
		return fmt.Errorf("%w: clear of %d", ErrNotAllocated, addr)
	}
	delete(s.corrupt, addr)
	if s.slots[addr] != nil {
		s.live--
		s.slots[addr] = nil
		s.free = append(s.free, addr)
	}
	return nil
}

// Counters implements Store.
func (s *MemStore) Counters() Counters { return s.ctr.snapshot() }

// ResetCounters implements Store.
func (s *MemStore) ResetCounters() { s.ctr.reset() }

// Close implements Store.
func (s *MemStore) Close() error { return nil }
