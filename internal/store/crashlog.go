package store

import "fmt"

// CrashLogDevice is CrashStore's WAL facet: an append-only byte log
// journaled in the same mutation timeline as the slot writes, so the
// power-cut generator enumerates every log append and truncate exactly
// like every bucket write. It structurally implements wal.Device (the
// interface lives in the wal package; store does not import it).
type CrashLogDevice struct {
	c *CrashStore
}

// LogDevice returns the store's WAL facet. All facets share one log.
func (c *CrashStore) LogDevice() *CrashLogDevice { return &CrashLogDevice{c: c} }

// Append journals and applies one log append.
func (d *CrashLogDevice) Append(p []byte) error {
	c := d.c
	c.mu.Lock()
	defer c.mu.Unlock()
	chunk := append([]byte(nil), p...)
	c.log = append(c.log, chunk...)
	c.journal = append(c.journal, crashMut{kind: mutLogAppend, addr: -1, frame: chunk})
	return nil
}

// Sync records a durability barrier. The store has a single journal, so
// the barrier covers slots and log alike — matching a real device, where
// fsync orders against every prior write to the file it syncs.
func (d *CrashLogDevice) Sync() error { return d.c.Sync() }

// Contents returns the current log image.
func (d *CrashLogDevice) Contents() ([]byte, error) {
	c := d.c
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.log...), nil
}

// TruncateTo journals and applies a log truncation.
func (d *CrashLogDevice) TruncateTo(n int64) error {
	c := d.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 || n > int64(len(c.log)) {
		return fmt.Errorf("store: log truncate to %d outside log of %d bytes", n, len(c.log))
	}
	c.log = c.log[:n]
	c.journal = append(c.journal, crashMut{kind: mutLogTruncate, addr: -1, size: n})
	return nil
}

// Size returns the current log length.
func (d *CrashLogDevice) Size() int64 {
	c := d.c
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(len(c.log))
}

// Close implements the device surface; the store owns the lifetime.
func (d *CrashLogDevice) Close() error { return nil }

// LogBytes returns the store's current WAL image — on a power-cut image,
// the log as the crash left it, for the harness to replay.
func (c *CrashStore) LogBytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.log...)
}

// damageBytes damages a raw byte chunk in place per kind — the log-append
// analogue of damageFrame, for bytes with no slot-frame layout. It
// returns how many leading bytes reached the medium: a tear keeps a
// strict prefix (the suffix never landed), a flip or zero keeps the whole
// damaged chunk.
func damageBytes(buf []byte, kind CorruptKind, mix uint64) (int, error) {
	if len(buf) == 0 {
		return 0, fmt.Errorf("store: cannot damage an empty chunk")
	}
	switch kind {
	case CorruptTear:
		return int(mix % uint64(len(buf))), nil
	case CorruptFlip:
		buf[mix%uint64(len(buf))] ^= 1 << ((mix >> 32) % 8)
		return len(buf), nil
	case CorruptZero:
		for i := range buf {
			buf[i] = 0
		}
		return len(buf), nil
	default:
		return 0, fmt.Errorf("store: unknown corruption kind %v", kind)
	}
}
