package store

import (
	"errors"
	"testing"

	"triehash/internal/bucket"
	"triehash/internal/obs"
)

// TestFaultTripObservable is the regression test for fault observability:
// an armed fault must surface as an EvFault event carrying the failing
// address and operation before the injected error propagates to the
// caller.
func TestFaultTripObservable(t *testing.T) {
	fs := NewFault(NewMem())
	hook := &obs.Hook{}
	fs.SetObsHook(hook)
	o := obs.New(obs.Config{TraceDepth: 16})
	hook.Set(o)

	addr, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	b := bucket.New(4)
	b.Put("k", []byte("v"))
	if err := fs.Write(addr, b); err != nil {
		t.Fatal(err)
	}

	fs.Arm(0, true, false)
	_, err = fs.Read(addr)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("armed read returned %v, want ErrInjected", err)
	}
	evs := o.Events().Snapshot()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want exactly the trip: %v", len(evs), evs)
	}
	ev := evs[0]
	if ev.Type != obs.EvFault {
		t.Fatalf("event type = %v, want EvFault", ev.Type)
	}
	if ev.Op != obs.OpRead {
		t.Fatalf("event op = %v, want OpRead", ev.Op)
	}
	if ev.Addr != addr {
		t.Fatalf("event addr = %d, want the failing address %d", ev.Addr, addr)
	}
	if o.EventCount(obs.EvFault) != 1 {
		t.Fatalf("EvFault count = %d, want 1", o.EventCount(obs.EvFault))
	}

	fs.Disarm()
	if _, err := fs.Read(addr); err != nil {
		t.Fatalf("disarmed read failed: %v", err)
	}

	// Write-side trips report their operation too.
	fs.Arm(0, false, true)
	if err := fs.Write(addr, b); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write returned %v, want ErrInjected", err)
	}
	if _, err := fs.Alloc(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed alloc returned %v, want ErrInjected", err)
	}
	evs = o.Events().Snapshot()
	if got := len(evs); got != 3 {
		t.Fatalf("got %d events, want 3: %v", got, evs)
	}
	if evs[1].Op != obs.OpWrite || evs[1].Addr != addr {
		t.Fatalf("write trip = %+v, want OpWrite on %d", evs[1], addr)
	}
	if evs[2].Op != obs.OpAlloc {
		t.Fatalf("alloc trip = %+v, want OpAlloc", evs[2])
	}
}

// TestCacheHitMissObservable verifies the buffer pool counts and (under
// TraceIO) traces its lookups.
func TestCacheHitMissObservable(t *testing.T) {
	c := NewCached(NewMem(), 2)
	hook := &obs.Hook{}
	c.SetObsHook(hook)
	o := obs.New(obs.Config{TraceDepth: 16, TraceIO: true})
	hook.Set(o)

	addr, err := c.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	b := bucket.New(4)
	b.Put("k", []byte("v"))
	if err := c.Write(addr, b); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(addr); err != nil { // hit: the write populated the frame
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 1 || m != 0 {
		t.Fatalf("hits/misses = %d/%d, want 1/0", h, m)
	}
	if got := o.EventCount(obs.EvCacheHit); got != 1 {
		t.Fatalf("EvCacheHit count = %d, want 1", got)
	}
	// The ring received the hit because TraceIO is on.
	evs := o.Events().Snapshot()
	if len(evs) != 1 || evs[0].Type != obs.EvCacheHit || evs[0].Addr != addr {
		t.Fatalf("traced events = %v, want one EvCacheHit on %d", evs, addr)
	}

	// ResetCounters zeroes the pool's counters along with the chain's.
	c.ResetCounters()
	if h, m := c.Hits(), c.Misses(); h != 0 || m != 0 {
		t.Fatalf("hits/misses after reset = %d/%d, want 0/0", h, m)
	}
}

// TestUnwrapChain checks the wrapper-chain helpers used by the public
// layer to reach specific stores through Instrumented/Cached/Fault.
func TestUnwrapChain(t *testing.T) {
	hook := &obs.Hook{}
	mem := NewMem()
	fault := NewFault(mem)
	cached := NewCached(fault, 4)
	inst := NewInstrumented(cached, hook)

	if got := AsCached(inst); got != cached {
		t.Fatalf("AsCached found %v, want the cached layer", got)
	}
	if got := AsFileStore(inst); got != nil {
		t.Fatalf("AsFileStore found %v, want nil (memory chain)", got)
	}
	if got := Unwrap(inst); got != cached {
		t.Fatalf("Unwrap(inst) = %v, want cached", got)
	}
}

// TestInstrumentedTimesOps verifies the instrumented wrapper records one
// latency sample per store operation when an observer is attached and
// stays transparent when not.
func TestInstrumentedTimesOps(t *testing.T) {
	hook := &obs.Hook{}
	s := NewInstrumented(NewMem(), hook)

	// Disabled: operations pass through, nothing recorded.
	addr, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(obs.Config{})
	hook.Set(o)

	b := bucket.New(4)
	b.Put("k", []byte("v"))
	if err := s.Write(addr, b); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(addr); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(addr); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		op   obs.Op
		want uint64
	}{{obs.OpAlloc, 0}, {obs.OpWrite, 1}, {obs.OpRead, 1}, {obs.OpFree, 1}} {
		if got := o.Op(tc.op).Count(); got != tc.want {
			t.Errorf("%v samples = %d, want %d", tc.op, got, tc.want)
		}
	}
}
