package store

import (
	"container/list"
	"sync"
	"sync/atomic"

	"triehash/internal/bucket"
	"triehash/internal/obs"
)

// Cached wraps a Store with a write-through LRU buffer pool of a fixed
// number of bucket frames. Hits are served from memory and do not reach
// the underlying store's counters, so experiments can quantify how a
// buffer pool changes the paper's access counts.
type Cached struct {
	Store
	frames int

	// hook reports hits and misses to an attached observer (nil = off).
	hook *obs.Hook

	// mu guards the LRU state: unlike the raw stores, whose read paths
	// are naturally concurrent, a cache hit reorders the LRU list.
	mu     sync.Mutex
	lru    *list.List // front = most recent; values are *frame
	byAddr map[int32]*list.Element

	// hits and misses are atomic so stats polling (thstat tails them
	// live) never takes the LRU mutex and never contends with reads.
	hits   atomic.Int64
	misses atomic.Int64
}

type frame struct {
	addr int32
	b    *bucket.Bucket
}

// NewCached wraps s with an LRU pool of the given number of frames.
func NewCached(s Store, frames int) *Cached {
	if frames < 1 {
		frames = 1
	}
	return &Cached{Store: s, frames: frames, lru: list.New(), byAddr: make(map[int32]*list.Element)}
}

// SetObsHook attaches the observability hook hit/miss events go to.
func (c *Cached) SetObsHook(h *obs.Hook) { c.hook = h }

// Unwrap returns the wrapped store.
func (c *Cached) Unwrap() Store { return c.Store }

// Hits reports the number of reads served from the pool. Lock-free: the
// counter is atomic, so polling never contends with the read path.
func (c *Cached) Hits() int64 { return c.hits.Load() }

// Misses returns the number of reads the pool had to forward.
func (c *Cached) Misses() int64 { return c.misses.Load() }

// ResetCounters implements Store, additionally zeroing the pool's hit and
// miss counters so every counter family resets together.
func (c *Cached) ResetCounters() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.Store.ResetCounters()
}

func (c *Cached) touch(addr int32, b *bucket.Bucket) {
	if el, ok := c.byAddr[addr]; ok {
		el.Value.(*frame).b = b
		c.lru.MoveToFront(el)
		return
	}
	c.byAddr[addr] = c.lru.PushFront(&frame{addr: addr, b: b})
	if c.lru.Len() > c.frames {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.byAddr, el.Value.(*frame).addr)
	}
}

// Read implements Store, serving hits from the pool.
func (c *Cached) Read(addr int32) (*bucket.Bucket, error) {
	c.mu.Lock()
	if el, ok := c.byAddr[addr]; ok {
		c.hits.Add(1)
		c.lru.MoveToFront(el)
		b := el.Value.(*frame).b.Clone()
		c.mu.Unlock()
		c.hook.Observer().Emit(obs.Event{Type: obs.EvCacheHit, Addr: addr})
		return b, nil
	}
	c.misses.Add(1)
	c.mu.Unlock()
	c.hook.Observer().Emit(obs.Event{Type: obs.EvCacheMiss, Addr: addr})
	b, err := c.Store.Read(addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.touch(addr, b.Clone())
	c.mu.Unlock()
	return b, nil
}

// Write implements Store write-through: the pool and the backing store
// both receive the new contents.
func (c *Cached) Write(addr int32, b *bucket.Bucket) error {
	if err := c.Store.Write(addr, b); err != nil {
		return err
	}
	c.mu.Lock()
	c.touch(addr, b.Clone())
	c.mu.Unlock()
	return nil
}

// Free implements Store, evicting the freed bucket from the pool.
func (c *Cached) Free(addr int32) error {
	c.Invalidate(addr)
	return c.Store.Free(addr)
}

// Invalidate implements Invalidator, dropping addr's frame. Required when
// a slot changes beneath the pool (Scrub clearing a quarantined slot on
// the base store): a retained frame would resurrect the cleared bucket.
func (c *Cached) Invalidate(addr int32) {
	c.mu.Lock()
	if el, ok := c.byAddr[addr]; ok {
		c.lru.Remove(el)
		delete(c.byAddr, addr)
	}
	c.mu.Unlock()
}
