package store

import (
	"errors"
	"os"
	"sync/atomic"
	"syscall"
)

// WriteFileDurable writes data to path and fsyncs the file before
// returning: unlike os.WriteFile, the bytes have reached stable storage —
// not just the page cache — when it succeeds. The atomic-replace pattern
// (write tmp, rename over target) is only crash-safe when the tmp file is
// synced before the rename and the directory after it; this is the first
// half, SyncDir the second.
func WriteFileDurable(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dirSyncs counts SyncDir calls process-wide. Directory fsyncs are the
// expensive tail of a metadata install, and the WAL checkpoint exists
// partly to batch them — the counter lets tests assert the batching
// actually happened instead of trusting the call graph.
var dirSyncs atomic.Uint64

// DirSyncCount returns the process-wide number of SyncDir calls.
func DirSyncCount() uint64 { return dirSyncs.Load() }

// SyncDir fsyncs the directory at dir, making a rename within it durable.
// Filesystems that cannot sync directories (EINVAL/ENOTSUP) are tolerated:
// on those media the rename is as durable as it gets.
func SyncDir(dir string) error {
	dirSyncs.Add(1)
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if closeErr := d.Close(); err == nil {
		err = closeErr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	return err
}
