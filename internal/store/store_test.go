package store

import (
	"errors"
	"path/filepath"
	"testing"

	"triehash/internal/bucket"
)

// storeContract exercises the Store interface invariants shared by every
// implementation.
func storeContract(t *testing.T, s Store, cached bool) {
	t.Helper()
	a0, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if a0 == a1 {
		t.Fatal("Alloc returned the same address twice")
	}
	if s.Buckets() != 2 {
		t.Fatalf("Buckets() = %d", s.Buckets())
	}

	b := bucket.New(4)
	b.Put("key", []byte("value"))
	if err := s.Write(a0, b); err != nil {
		t.Fatal(err)
	}
	// Caller mutations after Write must not leak into the store.
	b.Put("key2", []byte("other"))
	got, err := s.Read(a0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("read bucket has %d records; Write is not a snapshot", got.Len())
	}
	if v, ok := got.Get("key"); !ok || string(v) != "value" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	// Mutating a read bucket must not change the store.
	got.Delete("key")
	again, err := s.Read(a0)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != 1 {
		t.Fatal("mutating a read bucket changed the store")
	}

	// Freed addresses are rejected and then reused.
	if err := s.Free(a1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(a1); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("read of freed slot: %v", err)
	}
	if err := s.Write(a1, b); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("write of freed slot: %v", err)
	}
	if err := s.Free(a1); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("double free: %v", err)
	}
	a2, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1 {
		t.Fatalf("freed address %d not reused (got %d)", a1, a2)
	}
	if s.MaxAddr() != 2 {
		t.Fatalf("MaxAddr = %d", s.MaxAddr())
	}

	// Counters.
	c := s.Counters()
	if !cached && (c.Reads < 2 || c.Writes < 1) {
		t.Fatalf("counters: %v", c)
	}
	if c.Allocs != 3 || c.Frees != 1 {
		t.Fatalf("counters: %v", c)
	}
	s.ResetCounters()
	if s.Counters() != (Counters{}) {
		t.Fatal("ResetCounters did not zero")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemStoreContract(t *testing.T) {
	storeContract(t, NewMem(), false)
}

func TestFileStoreContract(t *testing.T) {
	s, err := CreateFile(filepath.Join(t.TempDir(), "buckets.th"), 256)
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, s, false)
}

func TestCachedContract(t *testing.T) {
	storeContract(t, NewCached(NewMem(), 4), true)
}

func TestMemStoreInvalidAddrs(t *testing.T) {
	s := NewMem()
	if _, err := s.Read(-1); !errors.Is(err, ErrNotAllocated) {
		t.Errorf("read(-1): %v", err)
	}
	if _, err := s.Read(7); !errors.Is(err, ErrNotAllocated) {
		t.Errorf("read(7): %v", err)
	}
}

func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "buckets.th")
	s, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []int32
	for i := 0; i < 5; i++ {
		a, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		b := bucket.New(2)
		b.Put(string(rune('a'+i)), []byte{byte(i)})
		if err := s.Write(a, b); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	if err := s.Free(addrs[2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Buckets() != 4 || r.MaxAddr() != 5 {
		t.Fatalf("reopened: buckets=%d max=%d", r.Buckets(), r.MaxAddr())
	}
	if _, err := r.Read(addrs[2]); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("freed slot survived reopen: %v", err)
	}
	b, err := r.Read(addrs[4])
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := b.Get("e"); !ok || v[0] != 4 {
		t.Fatalf("record lost across reopen: %v %v", v, ok)
	}
	// Freed slot is reused after reopen.
	a, err := r.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if a != addrs[2] {
		t.Fatalf("expected reuse of %d, got %d", addrs[2], a)
	}
}

func TestFileStoreCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "buckets.th")
	s, err := CreateFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Alloc()
	b := bucket.New(2)
	b.Put("k", []byte("v"))
	if err := s.Write(a, b); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte behind the store's back (the record area, past
	// the bucket's bound header).
	if _, err := s.f.WriteAt([]byte{0x5A}, fileHeaderSize+slotHeaderSize+9); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(a); err == nil {
		t.Fatal("corruption not detected")
	}
	s.Close()
}

func TestFileStoreOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file must fail")
	}
	bad := filepath.Join(dir, "bad")
	if err := writeJunk(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(bad); err == nil {
		t.Error("bad magic must fail")
	}
	if _, err := CreateFile(filepath.Join(dir, "tiny"), 4); err == nil {
		t.Error("tiny slot size must fail")
	}
}

func TestFileStoreOversizeBucket(t *testing.T) {
	s, err := CreateFile(filepath.Join(t.TempDir(), "b.th"), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a, _ := s.Alloc()
	b := bucket.New(2)
	b.Put("key", make([]byte, 100))
	if err := s.Write(a, b); err == nil {
		t.Fatal("oversize bucket accepted")
	}
}

func TestCachedHitAccounting(t *testing.T) {
	mem := NewMem()
	c := NewCached(mem, 2)
	a0, _ := c.Alloc()
	a1, _ := c.Alloc()
	a2, _ := c.Alloc()
	b := bucket.New(2)
	b.Put("x", nil)
	for _, a := range []int32{a0, a1, a2} {
		if err := c.Write(a, b); err != nil {
			t.Fatal(err)
		}
	}
	mem.ResetCounters()
	// a2 and a1 are cached (2 frames); a0 was evicted.
	if _, err := c.Read(a2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(a1); err != nil {
		t.Fatal(err)
	}
	if mem.Counters().Reads != 0 {
		t.Fatalf("cached reads reached the store: %v", mem.Counters())
	}
	if _, err := c.Read(a0); err != nil {
		t.Fatal(err)
	}
	if mem.Counters().Reads != 1 {
		t.Fatalf("miss did not reach the store: %v", mem.Counters())
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	// Free evicts.
	if err := c.Free(a1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(a1); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("freed bucket still served from cache: %v", err)
	}
}

func writeJunk(path string) error {
	s, err := CreateFile(path, 64)
	if err != nil {
		return err
	}
	if _, err := s.f.WriteAt([]byte("JUNKJUNK"), 0); err != nil {
		return err
	}
	return s.Close()
}
