package store

import (
	"errors"
	"fmt"
	"sync/atomic"

	"triehash/internal/bucket"
	"triehash/internal/obs"
)

// ErrInjected is the failure FaultStore injects.
var ErrInjected = errors.New("store: injected fault")

// FaultStore wraps a Store and fails operations on command — the failure
// injection used to verify the file layer surfaces storage errors instead
// of panicking or corrupting itself.
type FaultStore struct {
	Store
	// remaining counts successful operations before every subsequent
	// operation fails; negative = never fail.
	remaining atomic.Int64
	// failReads/failWrites select which operations are eligible.
	failReads  bool
	failWrites bool
	// hook reports trips to an attached observer (nil = off).
	hook *obs.Hook
}

// NewFault wraps s; the store works normally until Arm is called.
func NewFault(s Store) *FaultStore {
	f := &FaultStore{Store: s}
	f.remaining.Store(-1)
	return f
}

// Arm makes the store fail reads and/or writes after n more successful
// eligible operations.
func (f *FaultStore) Arm(n int64, reads, writes bool) {
	f.failReads, f.failWrites = reads, writes
	f.remaining.Store(n)
}

// Disarm restores normal operation.
func (f *FaultStore) Disarm() { f.remaining.Store(-1) }

// SetObsHook attaches the observability hook trip events go to.
func (f *FaultStore) SetObsHook(h *obs.Hook) { f.hook = h }

// Unwrap returns the wrapped store.
func (f *FaultStore) Unwrap() Store { return f.Store }

// tripped emits the fault event for op on addr before the error is built,
// so an attached tracer always sees the trip ahead of its propagation.
func (f *FaultStore) tripped(op obs.Op, addr int32) {
	f.hook.Observer().Emit(obs.Event{Type: obs.EvFault, Op: op, Addr: addr, Detail: "injected fault tripped"})
}

// trip decrements the budget and reports whether this operation fails.
func (f *FaultStore) trip() bool {
	for {
		r := f.remaining.Load()
		if r < 0 {
			return false
		}
		if r == 0 {
			return true
		}
		if f.remaining.CompareAndSwap(r, r-1) {
			return false
		}
	}
}

// Read implements Store with fault injection.
func (f *FaultStore) Read(addr int32) (*bucket.Bucket, error) {
	if f.failReads && f.trip() {
		f.tripped(obs.OpRead, addr)
		return nil, fmt.Errorf("%w: read of %d", ErrInjected, addr)
	}
	return f.Store.Read(addr)
}

// Write implements Store with fault injection.
func (f *FaultStore) Write(addr int32, b *bucket.Bucket) error {
	if f.failWrites && f.trip() {
		f.tripped(obs.OpWrite, addr)
		return fmt.Errorf("%w: write of %d", ErrInjected, addr)
	}
	return f.Store.Write(addr, b)
}

// Alloc implements Store with fault injection (counts as a write).
func (f *FaultStore) Alloc() (int32, error) {
	if f.failWrites && f.trip() {
		f.tripped(obs.OpAlloc, -1)
		return 0, fmt.Errorf("%w: alloc", ErrInjected)
	}
	return f.Store.Alloc()
}

// Free implements Store with fault injection (counts as a write).
func (f *FaultStore) Free(addr int32) error {
	if f.failWrites && f.trip() {
		f.tripped(obs.OpFree, addr)
		return fmt.Errorf("%w: free of %d", ErrInjected, addr)
	}
	return f.Store.Free(addr)
}
