package store

import (
	"errors"
	"fmt"
	"sync/atomic"

	"triehash/internal/bucket"
	"triehash/internal/obs"
)

// ErrInjected is the failure FaultStore injects.
var ErrInjected = errors.New("store: injected fault")

// FaultStore wraps a Store and fails operations on command — the failure
// injection used to verify the file layer surfaces storage errors instead
// of panicking or corrupting itself. Two injection families exist: the
// clean mode (Arm) fails whole operations atomically with ErrInjected,
// while the dirty mode (ArmCorrupt) lets writes "succeed" but damages the
// written slot in place — the torn-write and bit-flip failures a power cut
// produces, which only a later read or reopen discovers.
type FaultStore struct {
	Store
	// remaining counts successful operations before every subsequent
	// operation fails; negative = never fail.
	remaining atomic.Int64
	// failReads/failWrites select which operations are eligible.
	failReads  bool
	failWrites bool
	// corruptor, when non-nil, switches tripped writes from clean errors
	// to silent in-place corruption of kind corruptKind.
	corruptor   Corrupter
	corruptKind CorruptKind
	corruptSeed int64
	// hook reports trips to an attached observer (nil = off).
	hook *obs.Hook
}

// NewFault wraps s; the store works normally until Arm is called.
func NewFault(s Store) *FaultStore {
	f := &FaultStore{Store: s}
	f.remaining.Store(-1)
	return f
}

// Arm makes the store fail reads and/or writes after n more successful
// eligible operations (the clean-failure mode).
func (f *FaultStore) Arm(n int64, reads, writes bool) {
	f.failReads, f.failWrites = reads, writes
	f.corruptor = nil
	f.remaining.Store(n)
}

// ArmCorrupt makes every write after n more successful ones reach the
// store and then be damaged in place per kind (the dirty-failure mode: the
// caller sees success, the medium holds garbage). The damage is
// deterministic in seed. It returns an error when no store in the wrapped
// chain can corrupt slots.
func (f *FaultStore) ArmCorrupt(n int64, kind CorruptKind, seed int64) error {
	c := AsCorrupter(f.Store)
	if c == nil {
		return fmt.Errorf("store: fault: no Corrupter in the wrapped chain")
	}
	f.failReads, f.failWrites = false, true
	f.corruptor, f.corruptKind, f.corruptSeed = c, kind, seed
	f.remaining.Store(n)
	return nil
}

// Disarm restores normal operation.
func (f *FaultStore) Disarm() {
	f.corruptor = nil
	f.remaining.Store(-1)
}

// SetObsHook attaches the observability hook trip events go to.
func (f *FaultStore) SetObsHook(h *obs.Hook) { f.hook = h }

// Unwrap returns the wrapped store.
func (f *FaultStore) Unwrap() Store { return f.Store }

// tripped emits the fault event for op on addr before the error is built,
// so an attached tracer always sees the trip ahead of its propagation.
func (f *FaultStore) tripped(op obs.Op, addr int32) {
	f.hook.Observer().Emit(obs.Event{Type: obs.EvFault, Op: op, Addr: addr, Detail: "injected fault tripped"})
}

// trip decrements the budget and reports whether this operation fails.
func (f *FaultStore) trip() bool {
	for {
		r := f.remaining.Load()
		if r < 0 {
			return false
		}
		if r == 0 {
			return true
		}
		if f.remaining.CompareAndSwap(r, r-1) {
			return false
		}
	}
}

// Read implements Store with fault injection.
func (f *FaultStore) Read(addr int32) (*bucket.Bucket, error) {
	if f.failReads && f.trip() {
		f.tripped(obs.OpRead, addr)
		return nil, fmt.Errorf("%w: read of %d", ErrInjected, addr)
	}
	return f.Store.Read(addr)
}

// Write implements Store with fault injection. In corrupt mode a tripped
// write reaches the store and is then damaged in place — the write
// "succeeds", and only a later read (or reopen) finds the torn slot.
func (f *FaultStore) Write(addr int32, b *bucket.Bucket) error {
	if f.failWrites && f.trip() {
		if c := f.corruptor; c != nil {
			if err := f.Store.Write(addr, b); err != nil {
				return err
			}
			if err := c.CorruptSlot(addr, f.corruptKind, f.corruptSeed); err != nil {
				return fmt.Errorf("store: fault: corrupting slot %d: %w", addr, err)
			}
			// Pools between this wrapper and the base hold the good copy
			// (exactly like a page cache over a torn disk write); drop it
			// so in-process reads see what the medium sees.
			InvalidateAddr(f.Store, addr)
			f.hook.Observer().Emit(obs.Event{
				Type: obs.EvCorrupt, Op: obs.OpWrite, Addr: addr,
				Detail: fmt.Sprintf("injected %s corruption", f.corruptKind),
			})
			return nil
		}
		f.tripped(obs.OpWrite, addr)
		return fmt.Errorf("%w: write of %d", ErrInjected, addr)
	}
	return f.Store.Write(addr, b)
}

// Alloc implements Store with fault injection (counts as a write).
func (f *FaultStore) Alloc() (int32, error) {
	if f.failWrites && f.trip() {
		f.tripped(obs.OpAlloc, -1)
		return 0, fmt.Errorf("%w: alloc", ErrInjected)
	}
	return f.Store.Alloc()
}

// Free implements Store with fault injection (counts as a write).
func (f *FaultStore) Free(addr int32) error {
	if f.failWrites && f.trip() {
		f.tripped(obs.OpFree, addr)
		return fmt.Errorf("%w: free of %d", ErrInjected, addr)
	}
	return f.Store.Free(addr)
}
