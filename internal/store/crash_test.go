package store

import (
	"errors"
	"path/filepath"
	"testing"

	"triehash/internal/bucket"
	"triehash/internal/obs"
)

func TestCrashStoreContract(t *testing.T) {
	storeContract(t, NewCrash(), false)
}

// TestCrashStoreJournalAndPowerCut verifies the journal/barrier model: a
// power cut at a Sync mark reproduces exactly the state that was synced,
// a cut at the full journal reproduces the present, and the cut image's
// bookkeeping (live count, free-list reuse) matches the surviving flags.
func TestCrashStoreJournalAndPowerCut(t *testing.T) {
	cs := NewCrash()
	mk := func(k, v string) *bucket.Bucket {
		b := bucket.New(4)
		b.Put(k, []byte(v))
		return b
	}
	a0, _ := cs.Alloc()
	a1, _ := cs.Alloc()
	if err := cs.Write(a0, mk("alpha", "1")); err != nil {
		t.Fatal(err)
	}
	if err := cs.Sync(); err != nil {
		t.Fatal(err)
	}
	mark := cs.Journal()
	if mark != 3 {
		t.Fatalf("journal after 2 allocs + 1 write = %d, want 3", mark)
	}
	if err := cs.Write(a1, mk("beta", "2")); err != nil {
		t.Fatal(err)
	}
	if err := cs.Free(a0); err != nil {
		t.Fatal(err)
	}
	if got := cs.Syncs(); len(got) != 1 || got[0] != mark {
		t.Fatalf("Syncs() = %v, want [%d]", got, mark)
	}

	// Cut at zero: nothing survives.
	img := cs.PowerCut(0)
	if img.Buckets() != 0 || img.MaxAddr() != 0 {
		t.Fatalf("empty cut: %d buckets, max addr %d", img.Buckets(), img.MaxAddr())
	}

	// Cut at the barrier: the synced state, exactly.
	img = cs.PowerCut(mark)
	if img.Buckets() != 2 {
		t.Fatalf("cut at sync: %d buckets, want 2", img.Buckets())
	}
	b, err := img.Read(a0)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := b.Get("alpha"); !ok || string(v) != "1" {
		t.Fatalf("synced record = %q %v", v, ok)
	}
	if b, err := img.Read(a1); err != nil || b.Len() != 0 {
		t.Fatalf("a1 at sync: len %v err %v, want the empty alloc image", b, err)
	}

	// Cut at the full journal: the present, including the free.
	img = cs.PowerCut(cs.Journal())
	if img.Buckets() != 1 {
		t.Fatalf("full cut: %d buckets, want 1", img.Buckets())
	}
	if _, err := img.Read(a0); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("freed slot in full cut: %v", err)
	}
	// The freed slot is back on the image's free list.
	if a, err := img.Alloc(); err != nil || a != a0 {
		t.Fatalf("image Alloc = %d, %v; want the freed %d reused", a, err, a0)
	}

	// Out-of-range cut positions clamp instead of panicking.
	if cs.PowerCut(-5).Buckets() != 0 {
		t.Fatal("negative cut not clamped to the empty image")
	}
	if cs.PowerCut(1<<20).Buckets() != cs.Buckets() {
		t.Fatal("oversized cut not clamped to the full journal")
	}
}

// TestCrashStorePowerCutDamaged verifies the torn in-flight write: the
// damaged slot fails to read in the way its kind implies, and the damage
// is deterministic in the seed.
func TestCrashStorePowerCutDamaged(t *testing.T) {
	cs := NewCrash()
	hook := &obs.Hook{}
	cs.SetObsHook(hook)
	o := obs.New(obs.Config{TraceDepth: 16})
	hook.Set(o)

	addr, _ := cs.Alloc()
	b := bucket.New(4)
	b.Put("key", []byte("value"))
	b.Put("key2", []byte("value2"))
	if err := cs.Write(addr, b); err != nil {
		t.Fatal(err)
	}
	k := cs.Journal() - 1 // the write is in flight

	for _, kind := range []CorruptKind{CorruptTear, CorruptFlip} {
		img, damaged := cs.PowerCutDamaged(k, kind, 7)
		if damaged != addr {
			t.Fatalf("%v: damaged addr = %d, want %d", kind, damaged, addr)
		}
		_, err := img.Read(addr)
		var ce *CorruptError
		if !errors.Is(err, ErrCorrupt) || !errors.As(err, &ce) || ce.Addr != addr {
			t.Fatalf("%v: damaged read = %v, want CorruptError on %d", kind, err, addr)
		}
		// Determinism: the same cut parameters produce identical bytes.
		img2, _ := cs.PowerCutDamaged(k, kind, 7)
		r1, _ := img.ReadRaw(addr)
		r2, _ := img2.ReadRaw(addr)
		if string(r1) != string(r2) {
			t.Fatalf("%v: damage not deterministic in the seed", kind)
		}
	}

	// Zeroing wipes the flags: the slot reads as never allocated — the
	// undetectable loss the durability contract treats separately.
	img, damaged := cs.PowerCutDamaged(k, CorruptZero, 7)
	if damaged != addr {
		t.Fatalf("zero: damaged addr = %d, want %d", damaged, addr)
	}
	if _, err := img.Read(addr); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("zeroed read = %v, want ErrNotAllocated", err)
	}

	// With no mutation in flight there is nothing to damage.
	if _, damaged := cs.PowerCutDamaged(cs.Journal(), CorruptTear, 7); damaged != -1 {
		t.Fatalf("damaged addr at journal end = %d, want -1", damaged)
	}

	if o.EventCount(obs.EvCorrupt) == 0 {
		t.Fatal("power-cut damage emitted no EvCorrupt event")
	}
}

// TestCorruptErrorChain verifies the typed corruption error is preserved
// through the full wrapper chain (Instrumented over a buffer pool over a
// FaultStore over a FileStore) for both errors.Is and errors.As.
func TestCorruptErrorChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "buckets.th")
	fs, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	chain := NewInstrumented(NewSharded(NewFault(fs), 8, 2), &obs.Hook{})

	addr, err := chain.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	b := bucket.New(4)
	b.Put("key", []byte("value"))
	if err := chain.Write(addr, b); err != nil {
		t.Fatal(err)
	}
	if err := fs.CorruptSlot(addr, CorruptFlip, 3); err != nil {
		t.Fatal(err)
	}
	InvalidateAddr(chain, addr) // drop the clean cached frame

	_, err = chain.Read(addr)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read through the chain = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("read through the chain = %v, want a *CorruptError", err)
	}
	if ce.Addr != addr || ce.Reason == "" {
		t.Fatalf("CorruptError = %+v, want addr %d with a reason", ce, addr)
	}
	// The typed error does not swallow the unrelated sentinel.
	if _, err := chain.Read(addr + 99); errors.Is(err, ErrCorrupt) || !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("unallocated read = %v, want plain ErrNotAllocated", err)
	}
}

// TestFaultStoreArmCorrupt verifies the dirty injection mode: the tripped
// write reports success, the medium holds damage, and the injection is
// announced as an EvCorrupt event.
func TestFaultStoreArmCorrupt(t *testing.T) {
	fs := NewFault(NewMem())
	hook := &obs.Hook{}
	fs.SetObsHook(hook)
	o := obs.New(obs.Config{TraceDepth: 16})
	hook.Set(o)

	addr, _ := fs.Alloc()
	b := bucket.New(4)
	b.Put("key", []byte("value"))
	if err := fs.Write(addr, b); err != nil {
		t.Fatal(err)
	}
	if err := fs.ArmCorrupt(0, CorruptFlip, 11); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(addr, b); err != nil {
		t.Fatalf("dirty-mode write must report success, got %v", err)
	}
	if _, err := fs.Read(addr); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read after dirty write = %v, want ErrCorrupt", err)
	}
	if o.EventCount(obs.EvCorrupt) != 1 {
		t.Fatalf("EvCorrupt count = %d, want 1", o.EventCount(obs.EvCorrupt))
	}
	fs.Disarm()
	// MemStore corruption is sticky until the slot is released — the
	// quarantine path Scrub follows.
	if c := AsSlotClearer(fs); c == nil {
		t.Fatal("no SlotClearer in the chain")
	} else if err := c.ClearSlot(addr); err != nil {
		t.Fatal(err)
	}
	again, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if again != addr {
		t.Fatalf("cleared slot %d not reused (got %d)", addr, again)
	}
	if err := fs.Write(again, b); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read(again); err != nil {
		t.Fatalf("rewrite after clearing did not restore the slot: %v", err)
	}
}

// TestQuarantineRoundTrip verifies the quarantine file: append, reread,
// append again, and tolerate a truncated tail.
func TestQuarantineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quarantine.th")
	first := []QuarantineEntry{
		{Addr: 3, Reason: "checksum mismatch", Raw: []byte{1, 2, 3}},
		{Addr: 9, Reason: "invalid slot flags 0x55", Raw: nil},
	}
	if err := AppendQuarantine(path, first); err != nil {
		t.Fatal(err)
	}
	if err := AppendQuarantine(path, []QuarantineEntry{{Addr: 12, Reason: "torn", Raw: []byte("xyz")}}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQuarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d entries, want 3", len(got))
	}
	if got[0].Addr != 3 || got[0].Reason != "checksum mismatch" || string(got[0].Raw) != "\x01\x02\x03" {
		t.Fatalf("entry 0 = %+v", got[0])
	}
	if got[2].Addr != 12 || string(got[2].Raw) != "xyz" {
		t.Fatalf("entry 2 = %+v", got[2])
	}
}
