package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrCorrupt is the sentinel every detected-corruption error matches with
// errors.Is: a slot whose checksum, length frame or payload encoding no
// longer decodes. It is distinct from ErrNotAllocated (a cleanly freed or
// never-written slot) because corruption is evidence of a torn write or
// media fault — the caller can salvage (quarantine the slot and rebuild
// the trie from the survivors) instead of treating the address as absent.
var ErrCorrupt = errors.New("store: corrupt slot")

// CorruptError reports an unreadable slot with its address, so recovery
// tooling (File.Scrub, thcheck -repair) knows exactly which bucket to
// quarantine. It matches ErrCorrupt under errors.Is and is reachable with
// errors.As through every store wrapper (Instrumented, FaultStore, the
// buffer pools), which forward read errors unchanged.
type CorruptError struct {
	// Addr is the slot address that failed to read.
	Addr int32
	// Reason describes the failure ("checksum mismatch", "corrupt
	// length 91442", a payload decode error...).
	Reason string
}

// Error renders the address and reason.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: slot %d: corrupt: %s", e.Addr, e.Reason)
}

// Is makes errors.Is(err, ErrCorrupt) true for every CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// CorruptKind selects how an injected corruption damages a slot — the
// dirty-failure modes a power cut leaves behind, as opposed to the clean
// whole-operation failures FaultStore's error mode injects.
type CorruptKind int

const (
	// CorruptTear truncates the slot mid-payload: the prefix of the write
	// reached the medium, the suffix did not (a torn multi-sector write).
	// The checksum no longer covers the payload, so reads detect it.
	CorruptTear CorruptKind = iota
	// CorruptFlip inverts one payload bit (media decay, a misdirected
	// DMA). Reads detect it through the checksum.
	CorruptFlip
	// CorruptZero zeroes the slot header: the slot reads back as freed,
	// silently dropping its bucket — the nastiest case, detectable only
	// structurally (a trie leaf pointing at a missing slot).
	CorruptZero
)

func (k CorruptKind) String() string {
	switch k {
	case CorruptTear:
		return "tear"
	case CorruptFlip:
		return "flip"
	case CorruptZero:
		return "zero"
	}
	return fmt.Sprintf("CorruptKind(%d)", int(k))
}

// Corrupter is the optional slot-damage surface of a store; fault
// injection (FaultStore corrupt modes, crash tests) uses it to plant the
// dirty failures the salvage path must survive.
type Corrupter interface {
	// CorruptSlot damages addr in place per kind. seed makes the damaged
	// byte/bit deterministic, so crash tests replay exactly.
	CorruptSlot(addr int32, kind CorruptKind, seed int64) error
}

// RawReader is the optional raw-slot surface of a store: the slot's bytes
// as stored, served without checksum verification. Scrub uses it to
// preserve unreadable slots in the quarantine file before clearing them.
type RawReader interface {
	// ReadRaw returns a copy of the raw bytes of slot addr.
	ReadRaw(addr int32) ([]byte, error)
}

// SlotClearer is the optional unconditional-release surface of a store.
// Free refuses slots that no longer read back (their flags are
// unverifiable); ClearSlot releases them anyway — the quarantine step of
// Scrub, after the raw bytes are saved.
type SlotClearer interface {
	// ClearSlot marks addr free regardless of its current content.
	ClearSlot(addr int32) error
}

// AsCorrupter returns the first Corrupter in s's wrapper chain, or nil.
func AsCorrupter(s Store) Corrupter {
	for ; s != nil; s = Unwrap(s) {
		if c, ok := s.(Corrupter); ok {
			return c
		}
	}
	return nil
}

// AsRawReader returns the first RawReader in s's wrapper chain, or nil.
func AsRawReader(s Store) RawReader {
	for ; s != nil; s = Unwrap(s) {
		if r, ok := s.(RawReader); ok {
			return r
		}
	}
	return nil
}

// AsSlotClearer returns the first SlotClearer in s's wrapper chain, or nil.
func AsSlotClearer(s Store) SlotClearer {
	for ; s != nil; s = Unwrap(s) {
		if c, ok := s.(SlotClearer); ok {
			return c
		}
	}
	return nil
}

// Base returns the innermost store of s's wrapper chain — the layer that
// actually holds the slots. Scrub scans it directly so a warm buffer pool
// cannot mask on-medium corruption with a stale good frame.
func Base(s Store) Store {
	for {
		u, ok := s.(Unwrapper)
		if !ok {
			return s
		}
		s = u.Unwrap()
	}
}

// Invalidator is the frame-eviction surface of the buffer pools.
type Invalidator interface {
	// Invalidate drops any cached frame for addr.
	Invalidate(addr int32)
}

// InvalidateAddr drops addr's frame from every buffer pool in s's wrapper
// chain. Needed when a slot is modified beneath the pools (ClearSlot on
// the base store): a retained frame would resurrect the cleared bucket.
func InvalidateAddr(s Store, addr int32) {
	for ; s != nil; s = Unwrap(s) {
		if c, ok := s.(Invalidator); ok {
			c.Invalidate(addr)
		}
	}
}

// damageFrame damages a framed slot in place per kind. buf is the slot's
// bytes in the common frame layout (flags, payload length, crc32, payload,
// optional padding); mix supplies the deterministic entropy choosing the
// damaged offset and bit. Shared by FileStore.CorruptSlot and CrashStore's
// power-cut boundary entry, so both injectors tear identically.
func damageFrame(buf []byte, kind CorruptKind, mix uint64) error {
	n := int(binary.LittleEndian.Uint32(buf[1:]))
	if n < 0 || n > len(buf)-slotHeaderSize {
		n = len(buf) - slotHeaderSize
	}
	used := slotHeaderSize + n
	switch kind {
	case CorruptTear:
		// The write's prefix reached the medium; the rest of the slot
		// holds whatever the sectors held before — zeros here.
		cut := 1 + int(mix%uint64(used-1))
		changed := false
		for i := cut; i < used; i++ {
			if buf[i] != 0 {
				changed = true
			}
			buf[i] = 0
		}
		if !changed {
			buf[5] ^= 0x01 // the torn suffix was already zero; damage the crc
		}
	case CorruptFlip:
		if n > 0 {
			buf[slotHeaderSize+int(mix%uint64(n))] ^= 1 << ((mix >> 32) % 8)
		} else {
			buf[5] ^= 1 << ((mix >> 32) % 8) // no payload: flip a crc bit
		}
	case CorruptZero:
		for i := 0; i < used; i++ {
			buf[i] = 0
		}
	default:
		return fmt.Errorf("store: unknown corruption kind %v", kind)
	}
	return nil
}

// corruptMix derives a deterministic pseudo-random value from a seed and a
// slot address (splitmix64 finalizer): fault injection must be replayable,
// so the damaged offset and bit come from the caller's seed, never from a
// global entropy source.
func corruptMix(seed int64, addr int32) uint64 {
	z := uint64(seed) ^ (uint64(uint32(addr)) * 0x9E3779B97F4A7C15)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Quarantine file format: unreadable slots preserved verbatim before
// their slots are cleared, so no byte of a customer's data is destroyed by
// repair — a later forensic pass can still try to extract records.
//
//	header (8 bytes): magic "THQR", version
//	entry: addr (4), reason length (4), raw length (4),
//	       crc32 of reason+raw (4), reason bytes, raw bytes
const (
	quarMagic   = 0x54485152 // "THQR"
	quarVersion = 1
)

// QuarantineEntry is one preserved slot in a quarantine file.
type QuarantineEntry struct {
	// Addr is the slot address the bucket occupied.
	Addr int32
	// Reason is the read failure that condemned it.
	Reason string
	// Raw is the slot's bytes as they were on the medium (nil when the
	// store could not produce them).
	Raw []byte
}

// AppendQuarantine appends entries to the quarantine file at path,
// creating it (with its header) if needed, and fsyncs the result: a
// quarantined bucket must be durable before its slot is cleared.
func AppendQuarantine(path string, entries []QuarantineEntry) error {
	if len(entries) == 0 {
		return nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	var buf []byte
	if st.Size() == 0 {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], quarMagic)
		binary.LittleEndian.PutUint32(hdr[4:], quarVersion)
		buf = append(buf, hdr[:]...)
	}
	for _, e := range entries {
		var hdr [16]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(e.Addr))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(e.Reason)))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(e.Raw)))
		sum := crc32.NewIEEE()
		sum.Write([]byte(e.Reason))
		sum.Write(e.Raw)
		binary.LittleEndian.PutUint32(hdr[12:], sum.Sum32())
		buf = append(buf, hdr[:]...)
		buf = append(buf, e.Reason...)
		buf = append(buf, e.Raw...)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadQuarantine parses a quarantine file. Entries whose checksum fails
// are reported with an error but parsing continues — the quarantine file
// exists precisely because the medium is suspect.
func ReadQuarantine(path string) ([]QuarantineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 8 || binary.LittleEndian.Uint32(data[0:]) != quarMagic {
		return nil, fmt.Errorf("store: %s is not a quarantine file", path)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != quarVersion {
		return nil, fmt.Errorf("store: quarantine version %d unsupported", v)
	}
	var out []QuarantineEntry
	var firstErr error
	for off := 8; off < len(data); {
		if off+16 > len(data) {
			if firstErr == nil {
				firstErr = fmt.Errorf("store: quarantine entry truncated at offset %d", off)
			}
			break
		}
		addr := int32(binary.LittleEndian.Uint32(data[off:]))
		rlen := int(binary.LittleEndian.Uint32(data[off+4:]))
		blen := int(binary.LittleEndian.Uint32(data[off+8:]))
		want := binary.LittleEndian.Uint32(data[off+12:])
		off += 16
		if off+rlen+blen > len(data) {
			if firstErr == nil {
				firstErr = fmt.Errorf("store: quarantine entry for slot %d truncated", addr)
			}
			break
		}
		reason := string(data[off : off+rlen])
		raw := append([]byte(nil), data[off+rlen:off+rlen+blen]...)
		off += rlen + blen
		sum := crc32.NewIEEE()
		sum.Write([]byte(reason))
		sum.Write(raw)
		if sum.Sum32() != want {
			if firstErr == nil {
				firstErr = fmt.Errorf("store: quarantine entry for slot %d fails its checksum", addr)
			}
			continue
		}
		out = append(out, QuarantineEntry{Addr: addr, Reason: reason, Raw: raw})
	}
	return out, firstErr
}
