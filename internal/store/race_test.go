package store

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"triehash/internal/bucket"
	"triehash/internal/obs"
)

// TestStoreChainParallelDistinctSlots drives the full persistent stack —
// FileStore under a sharded CLOCK pool under an Instrumented wrapper —
// from many goroutines at once, each owning a disjoint set of slots (the
// concurrent engine's contract: same-slot ordering comes from bucket
// latches above the store, distinct-slot traffic needs nothing). Run
// under -race by `make test`.
func TestStoreChainParallelDistinctSlots(t *testing.T) {
	fs, err := CreateFile(filepath.Join(t.TempDir(), "buckets.th"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	hook := &obs.Hook{}
	st := NewInstrumented(NewSharded(fs, 32, 0), hook)
	defer st.Close()

	const (
		workers = 8
		perW    = 16
		rounds  = 40
	)
	// Allocation itself is part of the surface: every worker allocates its
	// own slots concurrently.
	slots := make([][]int32, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	report := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := make([]int32, 0, perW)
			for i := 0; i < perW; i++ {
				addr, err := st.Alloc()
				if err != nil {
					report(fmt.Errorf("worker %d: alloc: %w", w, err))
					return
				}
				own = append(own, addr)
			}
			slots[w] = own
			for r := 0; r < rounds; r++ {
				for i, addr := range own {
					b := bucket.New(8)
					b.Put(fmt.Sprintf("w%d.s%d", w, i), []byte(fmt.Sprintf("r%d", r)))
					if err := st.Write(addr, b); err != nil {
						report(fmt.Errorf("worker %d: write %d: %w", w, addr, err))
						return
					}
					got, err := st.Read(addr)
					if err != nil {
						report(fmt.Errorf("worker %d: read %d: %w", w, addr, err))
						return
					}
					if v, ok := got.Get(fmt.Sprintf("w%d.s%d", w, i)); !ok || string(v) != fmt.Sprintf("r%d", r) {
						report(fmt.Errorf("worker %d: slot %d read %q, %v after writing r%d", w, addr, v, ok, r))
						return
					}
					if v, err := st.ReadView(addr); err != nil || v.Len() != 1 {
						report(fmt.Errorf("worker %d: view %d: len %d, %v", w, addr, v.Len(), err))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	// Every worker's final image survived its neighbours' traffic.
	for w, own := range slots {
		for i, addr := range own {
			b, err := st.Read(addr)
			if err != nil {
				t.Fatalf("final read %d: %v", addr, err)
			}
			if v, ok := b.Get(fmt.Sprintf("w%d.s%d", w, i)); !ok || string(v) != fmt.Sprintf("r%d", rounds-1) {
				t.Fatalf("slot %d holds %q, %v", addr, v, ok)
			}
		}
	}
	if n := st.Buckets(); n != workers*perW {
		t.Fatalf("Buckets() = %d, want %d", n, workers*perW)
	}
	if c := st.Counters(); c.Writes < int64(workers*perW*rounds) {
		t.Fatalf("instrumented counters undercount: %+v", c)
	}
	// Frees from racing goroutines keep the allocator's books straight.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, addr := range slots[w] {
				if err := st.Free(addr); err != nil {
					report(fmt.Errorf("free %d: %w", addr, err))
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if n := st.Buckets(); n != 0 {
		t.Fatalf("Buckets() = %d after freeing everything", n)
	}
}
