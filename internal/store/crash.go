package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"triehash/internal/bucket"
	"triehash/internal/format"
	"triehash/internal/obs"
)

// CrashStore simulates a disk whose write cache is volatile: every
// mutation lands in the current image immediately (the running process
// sees its own writes), but is also journaled, and Sync records a
// durability barrier. PowerCut then materializes the image a power cut
// would leave behind — the journal prefix up to an arbitrary mutation,
// with the first in-flight write optionally torn or bit-flipped — which
// the crash harness reopens and verifies against the durability contract.
//
// Slots hold the same checksummed frame layout as FileStore (flags,
// payload length, crc32, payload), so a damaged boundary entry is
// detected by Read exactly as FileStore detects a torn slot on disk.
type CrashStore struct {
	mu    sync.Mutex
	slots [][]byte // framed post-images; nil = never written
	free  []int32
	live  int

	// journal records every slot post-image and log mutation in order;
	// syncs are the journal lengths at each Sync barrier.
	journal []crashMut
	syncs   []int

	// log is the current WAL image of the LogDevice facet.
	log []byte

	ctr  counterSet
	hook *obs.Hook
	// fmtv is the page encoding version writes use (0 = format.Default);
	// mirrors FileStore so crash tests cover both page formats.
	fmtv format.Version
}

// SetFormat selects the page encoding version Write and Alloc use.
func (c *CrashStore) SetFormat(v format.Version) {
	if v.Valid() {
		c.fmtv = v
	}
}

// Format returns the page encoding version writes use.
func (c *CrashStore) Format() format.Version {
	if c.fmtv == 0 {
		return format.Default
	}
	return c.fmtv
}

// mutKind distinguishes the two media a CrashStore journals: bucket
// slots and the append-only WAL byte log. One journal orders them both,
// so every WAL append and truncate is a power-cut position exactly like
// a slot write.
type mutKind uint8

const (
	mutSlot mutKind = iota
	mutLogAppend
	mutLogTruncate
)

// crashMut is one journaled mutation: for mutSlot, the full frame slot
// addr held after the write (Free and ClearSlot journal a freed frame);
// for mutLogAppend, the appended chunk in frame; for mutLogTruncate, the
// post-truncation log length in size.
type crashMut struct {
	kind  mutKind
	addr  int32
	frame []byte
	size  int64
}

// NewCrash returns an empty crash-simulation store.
func NewCrash() *CrashStore { return &CrashStore{} }

// SetObsHook attaches the observability hook power-cut corruption events
// go to.
func (c *CrashStore) SetObsHook(h *obs.Hook) { c.hook = h }

// encodeFrame builds a slot frame in the common layout.
func encodeFrame(flags byte, payload []byte) []byte {
	buf := make([]byte, slotHeaderSize+len(payload))
	buf[0] = flags
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[5:], crc32.ChecksumIEEE(payload))
	copy(buf[slotHeaderSize:], payload)
	return buf
}

// decodeFrame verifies and splits a slot frame, reporting damage as a
// CorruptError exactly like FileStore.readSlot.
func decodeFrame(addr int32, buf []byte) (flags byte, payload []byte, err error) {
	if len(buf) < slotHeaderSize {
		return 0, nil, &CorruptError{Addr: addr, Reason: fmt.Sprintf("frame truncated to %d bytes", len(buf))}
	}
	flags = buf[0]
	if flags != slotLive && flags != slotFree {
		return 0, nil, &CorruptError{Addr: addr, Reason: fmt.Sprintf("invalid slot flags 0x%02x", flags)}
	}
	n := int(binary.LittleEndian.Uint32(buf[1:]))
	if n > len(buf)-slotHeaderSize {
		return 0, nil, &CorruptError{Addr: addr, Reason: fmt.Sprintf("corrupt length %d", n)}
	}
	sum := binary.LittleEndian.Uint32(buf[5:])
	payload = buf[slotHeaderSize : slotHeaderSize+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, &CorruptError{Addr: addr, Reason: "checksum mismatch"}
	}
	return flags, payload, nil
}

// frame returns slot addr's current frame under the caller's lock.
func (c *CrashStore) frame(addr int32, op string) ([]byte, error) {
	if addr < 0 || int(addr) >= len(c.slots) || c.slots[addr] == nil {
		return nil, fmt.Errorf("%w: %s of %d", ErrNotAllocated, op, addr)
	}
	return c.slots[addr], nil
}

// apply installs a frame as slot addr's current image and journals it.
func (c *CrashStore) apply(addr int32, frame []byte) {
	for int(addr) >= len(c.slots) {
		c.slots = append(c.slots, nil)
	}
	c.slots[addr] = frame
	c.journal = append(c.journal, crashMut{addr: addr, frame: frame})
}

// Read implements Store, surfacing frame damage as CorruptError.
func (c *CrashStore) Read(addr int32) (*bucket.Bucket, error) {
	c.mu.Lock()
	buf, err := c.frame(addr, "read")
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	flags, payload, err := decodeFrame(addr, buf)
	if err != nil {
		return nil, err
	}
	if flags != slotLive {
		return nil, fmt.Errorf("%w: read of freed slot %d", ErrNotAllocated, addr)
	}
	c.ctr.reads.Add(1)
	b, _, err := bucket.DecodeBinary(payload)
	if err != nil {
		var uve *format.UnknownVersionError
		if errors.As(err, &uve) {
			return nil, err
		}
		return nil, &CorruptError{Addr: addr, Reason: fmt.Sprintf("payload decode: %v", err)}
	}
	format.RecordPageRead(b.DecodedFormat())
	return b, nil
}

// Write implements Store, journaling the slot's post-image.
func (c *CrashStore) Write(addr int32, b *bucket.Bucket) error {
	v := c.Format()
	payload := b.AppendFormat(nil, v)
	format.RecordPageWrite(v, len(payload), b.Bytes())
	c.mu.Lock()
	defer c.mu.Unlock()
	buf, err := c.frame(addr, "write")
	if err != nil {
		return err
	}
	flags, _, err := decodeFrame(addr, buf)
	if err != nil {
		return err
	}
	if flags != slotLive {
		return fmt.Errorf("%w: write of freed slot %d", ErrNotAllocated, addr)
	}
	c.ctr.writes.Add(1)
	c.apply(addr, encodeFrame(slotLive, payload))
	return nil
}

// Alloc implements Store, journaling the new slot's empty-bucket frame.
func (c *CrashStore) Alloc() (int32, error) {
	c.ctr.allocs.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	var addr int32
	if n := len(c.free); n > 0 {
		addr = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		addr = int32(len(c.slots))
	}
	c.apply(addr, encodeFrame(slotLive, bucket.New(0).AppendFormat(nil, c.Format())))
	c.live++
	return addr, nil
}

// Free implements Store, journaling a freed frame.
func (c *CrashStore) Free(addr int32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf, err := c.frame(addr, "free")
	if err != nil {
		return err
	}
	flags, _, err := decodeFrame(addr, buf)
	if err != nil {
		return err
	}
	if flags != slotLive {
		return fmt.Errorf("%w: double free of slot %d", ErrNotAllocated, addr)
	}
	c.ctr.frees.Add(1)
	c.apply(addr, encodeFrame(slotFree, nil))
	c.live--
	c.free = append(c.free, addr)
	return nil
}

// Sync records a durability barrier: every journaled mutation before this
// point survives any later power cut.
func (c *CrashStore) Sync() error {
	c.mu.Lock()
	c.syncs = append(c.syncs, len(c.journal))
	c.mu.Unlock()
	return nil
}

// Journal returns the number of mutations recorded so far.
func (c *CrashStore) Journal() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.journal)
}

// Syncs returns the journal positions of the Sync barriers, in order.
func (c *CrashStore) Syncs() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.syncs...)
}

// PowerCut returns the store image a power cut leaves after exactly
// applied journaled mutations reached the medium: the journal prefix
// replayed onto an empty image, bookkeeping rebuilt from the surviving
// slot flags exactly as OpenFile rebuilds it from disk.
func (c *CrashStore) PowerCut(applied int) *CrashStore {
	img, _ := c.cut(applied, false, 0, 0)
	return img
}

// PowerCutDamaged is PowerCut with the first in-flight mutation (journal
// index applied) additionally reaching the medium damaged per kind — the
// torn multi-sector write a real power cut produces. It returns the
// damaged slot's address, or -1 when no mutation was in flight. The
// damage is deterministic in seed and is reported to the attached
// observer as an EvCorrupt event.
func (c *CrashStore) PowerCutDamaged(applied int, kind CorruptKind, seed int64) (*CrashStore, int32) {
	return c.cut(applied, true, kind, seed)
}

func (c *CrashStore) cut(applied int, damage bool, kind CorruptKind, seed int64) (*CrashStore, int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if applied < 0 {
		applied = 0
	}
	if applied > len(c.journal) {
		applied = len(c.journal)
	}
	img := &CrashStore{}
	install := func(addr int32, frame []byte) {
		for int(addr) >= len(img.slots) {
			img.slots = append(img.slots, nil)
		}
		img.slots[addr] = frame
	}
	replay := func(m crashMut) {
		switch m.kind {
		case mutSlot:
			install(m.addr, append([]byte(nil), m.frame...))
		case mutLogAppend:
			img.log = append(img.log, m.frame...)
		case mutLogTruncate:
			if m.size <= int64(len(img.log)) {
				img.log = img.log[:m.size]
			}
		}
	}
	for _, m := range c.journal[:applied] {
		replay(m)
	}
	damagedAddr := int32(-1)
	if damage && applied < len(c.journal) {
		m := c.journal[applied]
		switch m.kind {
		case mutSlot:
			frame := append([]byte(nil), m.frame...)
			if err := damageFrame(frame, kind, corruptMix(seed, m.addr)); err == nil {
				install(m.addr, frame)
				damagedAddr = m.addr
				c.hook.Observer().Emit(obs.Event{
					Type: obs.EvCorrupt, Op: obs.OpWrite, Addr: m.addr,
					Detail: fmt.Sprintf("power cut tore in-flight write (%s)", kind),
				})
			}
		case mutLogAppend:
			// The in-flight log append reaches the medium damaged: its torn,
			// flipped or zeroed bytes land after the intact prefix. The frame
			// CRC makes every variant a detectable damaged tail — no slot is
			// hurt, so no damagedAddr is reported.
			chunk := append([]byte(nil), m.frame...)
			if keep, err := damageBytes(chunk, kind, corruptMix(seed, int32(len(img.log)))); err == nil {
				img.log = append(img.log, chunk[:keep]...)
				c.hook.Observer().Emit(obs.Event{
					Type: obs.EvCorrupt, Op: obs.OpWrite, Addr: -1,
					Detail: fmt.Sprintf("power cut tore in-flight log append (%s)", kind),
				})
			}
		case mutLogTruncate:
			// A truncate either happened or did not; there is no torn state
			// to inject, so the damaged variant equals the clean cut.
		}
	}
	// Rebuild bookkeeping from the surviving flags, the same
	// classification OpenFile applies to a real file: flags == live is a
	// live slot, everything else (freed, zeroed, never written) is free.
	for a := int32(0); int(a) < len(img.slots); a++ {
		if f := img.slots[a]; f != nil && len(f) > 0 && f[0] == slotLive {
			img.live++
		} else {
			img.free = append(img.free, a)
		}
	}
	return img, damagedAddr
}

// CorruptSlot implements Corrupter, damaging the current image in place
// (the journal keeps the undamaged post-image: injected decay is a
// property of the medium, not of the write that once succeeded).
func (c *CrashStore) CorruptSlot(addr int32, kind CorruptKind, seed int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf, err := c.frame(addr, "corrupt")
	if err != nil {
		return err
	}
	frame := append([]byte(nil), buf...)
	if err := damageFrame(frame, kind, corruptMix(seed, addr)); err != nil {
		return err
	}
	c.slots[addr] = frame
	return nil
}

// ReadRaw implements RawReader: the slot's frame bytes as "stored".
func (c *CrashStore) ReadRaw(addr int32) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf, err := c.frame(addr, "raw read")
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), buf...), nil
}

// ClearSlot implements SlotClearer: the slot is released regardless of
// its content, with the clear journaled like any other mutation.
func (c *CrashStore) ClearSlot(addr int32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if addr < 0 || int(addr) >= len(c.slots) {
		return fmt.Errorf("%w: clear of %d", ErrNotAllocated, addr)
	}
	wasLive := false
	if f := c.slots[addr]; f != nil && len(f) > 0 && f[0] == slotLive {
		wasLive = true
	}
	onFree := false
	for _, a := range c.free {
		if a == addr {
			onFree = true
			break
		}
	}
	c.apply(addr, encodeFrame(slotFree, nil))
	if wasLive {
		c.live--
	}
	if !onFree {
		c.free = append(c.free, addr)
	}
	return nil
}

// Buckets implements Store.
func (c *CrashStore) Buckets() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live
}

// MaxAddr implements Store.
func (c *CrashStore) MaxAddr() int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int32(len(c.slots))
}

// Counters implements Store.
func (c *CrashStore) Counters() Counters { return c.ctr.snapshot() }

// ResetCounters implements Store.
func (c *CrashStore) ResetCounters() { c.ctr.reset() }

// Close implements Store.
func (c *CrashStore) Close() error { return nil }
