package format

import (
	"encoding/binary"
	"strings"
	"testing"
)

func TestVersionValid(t *testing.T) {
	if !V1.Valid() || !V2.Valid() {
		t.Fatal("writable versions must be valid")
	}
	for _, v := range []Version{0, 3, 9, 255} {
		if v.Valid() {
			t.Fatalf("version %d must not be valid", v)
		}
	}
	if Default != V2 {
		t.Fatalf("default version is %v, the compact encoding is %v", Default, V2)
	}
	if V2.String() != "v2" {
		t.Fatalf("String() = %q", V2.String())
	}
}

func TestUnknownVersionErrorMessage(t *testing.T) {
	e := &UnknownVersionError{Surface: "bucket page", Version: 9}
	msg := e.Error()
	for _, needle := range []string{"bucket page", "version 9", "newer"} {
		if !strings.Contains(msg, needle) {
			t.Fatalf("error %q lacks %q", msg, needle)
		}
	}
}

// TestUvarintAgainstStdlib pins the fast-path decoder to binary.Uvarint
// across the encoding's boundaries: single-byte, multi-byte, truncated,
// and the 10-byte overflow stdlib rejects with n < 0 (which Uvarint
// folds into its single n == 0 failure case).
func TestUvarintAgainstStdlib(t *testing.T) {
	values := []uint64{0, 1, 0x7F, 0x80, 0x3FFF, 0x4000, 1<<32 - 1, 1 << 62, ^uint64(0)}
	for _, x := range values {
		buf := binary.AppendUvarint(nil, x)
		if got := UvarintLen(x); got != len(buf) {
			t.Fatalf("UvarintLen(%d) = %d, encoding is %d bytes", x, got, len(buf))
		}
		v, n := Uvarint(buf)
		if v != x || n != len(buf) {
			t.Fatalf("Uvarint(enc(%d)) = %d, %d", x, v, n)
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, n := Uvarint(buf[:cut]); n != 0 {
				t.Fatalf("Uvarint of %d truncated to %d bytes consumed %d", x, cut, n)
			}
		}
	}
	// 11 continuation bytes: binary.Uvarint returns n < 0 (overflow);
	// Uvarint must report failure, not a bogus value.
	over := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, n := Uvarint(over); n != 0 {
		t.Fatalf("overflowing uvarint consumed %d bytes", n)
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	for _, d := range []int64{0, -1, 1, -2, 2, 1 << 31, -(1 << 31), 1<<63 - 1, -1 << 63} {
		if got := Unzigzag(Zigzag(d)); got != d {
			t.Fatalf("Unzigzag(Zigzag(%d)) = %d", d, got)
		}
	}
	// The mapping interleaves: small magnitudes stay small, which is what
	// makes zigzag deltas uvarint-friendly.
	for i, want := range []uint64{0, 1, 2, 3, 4} {
		d := int64(i+1) / 2
		if i%2 == 1 {
			d = -d
		}
		if got := Zigzag(d); got != want {
			t.Fatalf("Zigzag(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	ResetStats()
	defer ResetStats()
	RecordPageRead(V1)
	RecordPageRead(V2)
	RecordPageRead(V2)
	RecordPageRead(Version(9)) // unknown: not counted
	RecordPageWrite(V1, 100, 100)
	RecordPageWrite(V2, 70, 100)
	RecordPageWrite(V2, 120, 100) // v2 larger than v1: no negative saving
	s := StatsSnapshot()
	want := Stats{
		PagesReadV1: 1, PagesReadV2: 2,
		PagesWrittenV1: 1, PagesWrittenV2: 2,
		BytesSaved: 30,
	}
	if s != want {
		t.Fatalf("StatsSnapshot() = %+v, want %+v", s, want)
	}
	ResetStats()
	if s := StatsSnapshot(); s != (Stats{}) {
		t.Fatalf("ResetStats left %+v", s)
	}
}
