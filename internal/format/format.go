// Package format defines the on-disk encoding versions shared by the
// three persistent surfaces (bucket pages, trie pages, WAL frames) and
// the cross-surface helpers the codecs are built from: uvarint sizing,
// zigzag mapping for signed deltas, the typed error every surface
// returns for a version it does not know, and the global page counters
// that make a mixed-version file observable during rollout.
//
// Version 1 is the original fixed-width little-endian layout. Version 2
// packs lengths as uvarints, compresses bucket keys against their
// shared prefixes, serializes trie cells as deltas over a pre-order
// walk, and frames WAL records with uvarint lengths. Every decoder
// accepts both versions; writers emit the version the file was opened
// with, so a v1 file upgrades page by page as pages are rewritten.
package format

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Version identifies an on-disk encoding version.
type Version uint8

const (
	// V1 is the original fixed-width encoding.
	V1 Version = 1
	// V2 is the compact varint/delta/prefix-compressed encoding.
	V2 Version = 2
	// Default is the version new files are written with.
	Default = V2
)

// Valid reports whether v is a version this build can write.
func (v Version) Valid() bool { return v == V1 || v == V2 }

func (v Version) String() string { return fmt.Sprintf("v%d", uint8(v)) }

// UnknownVersionError reports an on-disk version this build does not
// understand — the signature of a file written by a future build. It is
// deliberately distinct from corruption: the bytes are intact, the
// reader is too old, and no repair (truncation, quarantine) must touch
// them.
type UnknownVersionError struct {
	// Surface names what carried the version ("meta", "bucket page",
	// "trie page", "wal").
	Surface string
	// Version is the unknown version found.
	Version uint32
}

func (e *UnknownVersionError) Error() string {
	return fmt.Sprintf("format: %s version %d is newer than this build supports (max %d)",
		e.Surface, e.Version, uint8(Default))
}

// UvarintLen returns the encoded size of x as a uvarint, 1..10 bytes.
func UvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// Zigzag maps a signed delta onto the uvarint-friendly unsigned line
// (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...).
func Zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Uvarint decodes a uvarint from buf, returning the value and bytes
// consumed; n == 0 means buf was truncated or the encoding overflowed.
// It is binary.Uvarint restricted to the success cases the codecs want.
// The single-byte case is inlined: nearly every length in a page is
// below 128, and the decoders call this in their per-record hot loop.
func Uvarint(buf []byte) (uint64, int) {
	if len(buf) > 0 && buf[0] < 0x80 {
		return uint64(buf[0]), 1
	}
	return uvarintSlow(buf)
}

func uvarintSlow(buf []byte) (uint64, int) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0
	}
	return v, n
}

// pageStats is one surface's rollout counters. All fields are written
// with atomics: codecs run under every engine's locks and none of them.
type pageStats struct {
	readsV1    atomic.Uint64
	readsV2    atomic.Uint64
	writesV1   atomic.Uint64
	writesV2   atomic.Uint64
	bytesSaved atomic.Uint64 // v1-equivalent minus actual, v2 writes only
}

var bucketPages pageStats

// RecordPageRead counts a decoded bucket page by the version it was
// stored in. Unknown versions (decode failed) are not counted.
func RecordPageRead(v Version) {
	switch v {
	case V1:
		bucketPages.readsV1.Add(1)
	case V2:
		bucketPages.readsV2.Add(1)
	}
}

// RecordPageWrite counts an encoded bucket page and, for v2, the bytes
// it saved against the v1 encoding of the same bucket.
func RecordPageWrite(v Version, actual, v1Equivalent int) {
	switch v {
	case V1:
		bucketPages.writesV1.Add(1)
	case V2:
		bucketPages.writesV2.Add(1)
		if v1Equivalent > actual {
			bucketPages.bytesSaved.Add(uint64(v1Equivalent - actual))
		}
	}
}

// Stats is a point-in-time snapshot of the format rollout counters.
type Stats struct {
	// PagesReadV1 and PagesReadV2 count bucket pages decoded, by the
	// version they were stored in.
	PagesReadV1 uint64 `json:"pages_read_v1"`
	PagesReadV2 uint64 `json:"pages_read_v2"`
	// PagesWrittenV1 and PagesWrittenV2 count bucket pages encoded.
	PagesWrittenV1 uint64 `json:"pages_written_v1"`
	PagesWrittenV2 uint64 `json:"pages_written_v2"`
	// BytesSaved accumulates, over all v2 page writes, the difference
	// between the v1 encoding's size and the bytes actually written.
	BytesSaved uint64 `json:"bytes_saved"`
}

// StatsSnapshot returns the current counters.
func StatsSnapshot() Stats {
	return Stats{
		PagesReadV1:    bucketPages.readsV1.Load(),
		PagesReadV2:    bucketPages.readsV2.Load(),
		PagesWrittenV1: bucketPages.writesV1.Load(),
		PagesWrittenV2: bucketPages.writesV2.Load(),
		BytesSaved:     bucketPages.bytesSaved.Load(),
	}
}

// ResetStats zeroes the counters (tests and benchmarks).
func ResetStats() {
	bucketPages.readsV1.Store(0)
	bucketPages.readsV2.Store(0)
	bucketPages.writesV1.Store(0)
	bucketPages.writesV2.Store(0)
	bucketPages.bytesSaved.Store(0)
}
