// Package linhash implements Litwin's linear hashing (/LIT80/), the
// canonical dynamic hashing method the paper positions trie hashing
// against: Section 2.3 notes that TH sits "somewhere between tree based
// methods and usual dynamic hashing methods" — its splits are partly
// random where LH's are driven by a split pointer and TH keeps key order
// where LH destroys it.
//
// The implementation is the classic controlled-load variant: primary
// buckets 0..N-1 with chained overflow pages, a split pointer p and level
// l; the table splits bucket p whenever the overall load factor exceeds
// the configured threshold. Accesses are counted per page touched, so the
// paper-style comparison (load factor, accesses per search, range-query
// cost) runs on equal terms with the trie-hashed file.
package linhash

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// ErrNotFound is returned when a key is absent.
var ErrNotFound = errors.New("linhash: key not found")

// Config parameterizes the table.
type Config struct {
	// Capacity is the records-per-page limit b >= 2 (primary and
	// overflow pages alike).
	Capacity int
	// MaxLoad is the controlled-load threshold that triggers splits
	// (records / (Capacity * primary buckets)); default 0.8.
	MaxLoad float64
}

type record struct {
	key   string
	value []byte
}

// page is a primary bucket or an overflow page.
type page struct {
	recs     []record
	overflow *page
}

// Table is a linear-hashed file.
type Table struct {
	cfg   Config
	pages []*page // primary buckets
	p     int     // split pointer
	l     uint    // level: buckets hashed with 2^l or 2^(l+1)
	n0    int     // initial buckets (1)
	nkeys int
	// accesses counts page touches, the disk currency.
	accesses int64
	splits   int
	overflow int // live overflow pages
}

// New returns an empty linear-hash table.
func New(cfg Config) (*Table, error) {
	if cfg.Capacity < 2 {
		return nil, fmt.Errorf("linhash: page capacity %d; need at least 2", cfg.Capacity)
	}
	if cfg.MaxLoad == 0 {
		cfg.MaxLoad = 0.8
	}
	if cfg.MaxLoad <= 0 || cfg.MaxLoad > 1 {
		return nil, fmt.Errorf("linhash: max load %v outside (0, 1]", cfg.MaxLoad)
	}
	return &Table{cfg: cfg, pages: []*page{{}}, n0: 1}, nil
}

// Len returns the number of records.
func (t *Table) Len() int { return t.nkeys }

// Buckets returns the number of primary buckets.
func (t *Table) Buckets() int { return len(t.pages) }

// OverflowPages returns the number of live overflow pages.
func (t *Table) OverflowPages() int { return t.overflow }

// Splits returns the number of bucket splits.
func (t *Table) Splits() int { return t.splits }

// Accesses returns the accumulated page touches.
func (t *Table) Accesses() int64 { return t.accesses }

// ResetAccesses zeroes the counter.
func (t *Table) ResetAccesses() { t.accesses = 0 }

// Load returns the load factor over primary and overflow pages.
func (t *Table) Load() float64 {
	total := len(t.pages) + t.overflow
	if total == 0 {
		return 0
	}
	return float64(t.nkeys) / float64(t.cfg.Capacity*total)
}

// PrimaryLoad returns records over primary capacity only (the figure the
// split criterion controls).
func (t *Table) PrimaryLoad() float64 {
	return float64(t.nkeys) / float64(t.cfg.Capacity*len(t.pages))
}

func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// addr maps a key to its primary bucket per the LH addressing rule.
func (t *Table) addr(key string) int {
	h := hash64(key)
	a := int(h % uint64(t.n0<<t.l))
	if a < t.p {
		a = int(h % uint64(t.n0<<(t.l+1)))
	}
	return a
}

// Get returns the value stored under key, walking the overflow chain.
func (t *Table) Get(key string) ([]byte, error) {
	for pg := t.pages[t.addr(key)]; pg != nil; pg = pg.overflow {
		t.accesses++
		for _, r := range pg.recs {
			if r.key == key {
				return r.value, nil
			}
		}
	}
	return nil, ErrNotFound
}

// Put inserts or replaces the record for key.
func (t *Table) Put(key string, value []byte) error {
	pg := t.pages[t.addr(key)]
	for q := pg; q != nil; q = q.overflow {
		t.accesses++
		for i := range q.recs {
			if q.recs[i].key == key {
				q.recs[i].value = value
				return nil
			}
		}
	}
	// Append to the first page with room, chaining overflow as needed.
	q := pg
	for len(q.recs) >= t.cfg.Capacity {
		if q.overflow == nil {
			q.overflow = &page{}
			t.overflow++
		}
		q = q.overflow
		t.accesses++
	}
	q.recs = append(q.recs, record{key, value})
	t.nkeys++
	t.accesses++ // write-back
	for t.PrimaryLoad() > t.cfg.MaxLoad {
		t.split()
	}
	return nil
}

// split performs one linear-hashing split: bucket p's records rehash at
// level l+1 between p and the appended bucket; the split pointer then
// advances, doubling the level when it wraps.
func (t *Table) split() {
	old := t.pages[t.p]
	t.pages = append(t.pages, &page{})
	newIdx := len(t.pages) - 1

	var all []record
	for q := old; q != nil; q = q.overflow {
		t.accesses++
		all = append(all, q.recs...)
		if q != old {
			t.overflow--
		}
	}
	stay := &page{}
	moved := &page{}
	for _, r := range all {
		target := stay
		if int(hash64(r.key)%uint64(t.n0<<(t.l+1))) == newIdx {
			target = moved
		}
		q := target
		for len(q.recs) >= t.cfg.Capacity {
			if q.overflow == nil {
				q.overflow = &page{}
				t.overflow++
			}
			q = q.overflow
		}
		q.recs = append(q.recs, r)
	}
	t.pages[t.p] = stay
	t.pages[newIdx] = moved
	t.accesses += 2
	t.splits++
	t.p++
	if t.p == t.n0<<t.l {
		t.p = 0
		t.l++
	}
}

// Delete removes the record for key.
func (t *Table) Delete(key string) error {
	head := t.pages[t.addr(key)]
	for pg := head; pg != nil; pg = pg.overflow {
		t.accesses++
		for i := range pg.recs {
			if pg.recs[i].key == key {
				pg.recs = append(pg.recs[:i], pg.recs[i+1:]...)
				t.nkeys--
				t.accesses++
				return nil
			}
		}
	}
	return ErrNotFound
}

// Range is the method's weakness the paper exploits: hashing destroys key
// order, so a range query must touch every page and sort the survivors.
// The access count makes the cost visible next to trie hashing's
// sequential scan.
func (t *Table) Range(from, to string, fn func(key string, value []byte) bool) {
	var hits []record
	for _, head := range t.pages {
		for pg := head; pg != nil; pg = pg.overflow {
			t.accesses++
			for _, r := range pg.recs {
				if r.key >= from && (to == "" || r.key <= to) {
					hits = append(hits, r)
				}
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].key < hits[j].key })
	for _, r := range hits {
		if !fn(r.key, r.value) {
			return
		}
	}
}

// AvgChain returns the mean number of pages per primary bucket (1 = no
// overflow anywhere).
func (t *Table) AvgChain() float64 {
	total := 0
	for _, head := range t.pages {
		for pg := head; pg != nil; pg = pg.overflow {
			total++
		}
	}
	return float64(total) / float64(len(t.pages))
}
