package linhash

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func newTable(t *testing.T, cfg Config) *Table {
	t.Helper()
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestConfigErrors(t *testing.T) {
	if _, err := New(Config{Capacity: 1}); err == nil {
		t.Error("capacity 1 accepted")
	}
	if _, err := New(Config{Capacity: 4, MaxLoad: 1.5}); err == nil {
		t.Error("load 1.5 accepted")
	}
}

func TestBasicOps(t *testing.T) {
	tb := newTable(t, Config{Capacity: 4})
	if _, err := tb.Get("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty get: %v", err)
	}
	if err := tb.Put("k", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tb.Put("k", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("len %d after overwrite", tb.Len())
	}
	if v, err := tb.Get("k"); err != nil || string(v) != "2" {
		t.Fatalf("get %q %v", v, err)
	}
	if err := tb.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tb := newTable(t, Config{Capacity: 4})
	model := map[string]string{}
	for step := 0; step < 8000; step++ {
		k := fmt.Sprintf("k%04d", rng.Intn(1500))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			v := fmt.Sprintf("v%d", step)
			if err := tb.Put(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 6, 7, 8:
			v, err := tb.Get(k)
			want, ok := model[k]
			switch {
			case ok && (err != nil || string(v) != want):
				t.Fatalf("Get(%q) = %q,%v want %q", k, v, err, want)
			case !ok && !errors.Is(err, ErrNotFound):
				t.Fatalf("Get(%q): %v", k, err)
			}
		default:
			err := tb.Delete(k)
			_, ok := model[k]
			if ok && err != nil || !ok && !errors.Is(err, ErrNotFound) {
				t.Fatalf("Delete(%q): %v", k, err)
			}
			delete(model, k)
		}
	}
	if tb.Len() != len(model) {
		t.Fatalf("len %d, model %d", tb.Len(), len(model))
	}
	// Range returns the sorted model contents despite hashing.
	var got []string
	tb.Range("k0100", "k0300", func(k string, _ []byte) bool { got = append(got, k); return true })
	var want []string
	for k := range model {
		if k >= "k0100" && k <= "k0300" {
			want = append(want, k)
		}
	}
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("range %d keys, want %d", len(got), len(want))
	}
}

// TestControlledLoad verifies the split criterion holds the primary load
// near the threshold.
func TestControlledLoad(t *testing.T) {
	for _, maxLoad := range []float64{0.7, 0.8, 0.9} {
		tb := newTable(t, Config{Capacity: 10, MaxLoad: maxLoad})
		for i := 0; i < 20000; i++ {
			if err := tb.Put(fmt.Sprintf("key-%08d", i*37), nil); err != nil {
				t.Fatal(err)
			}
		}
		if got := tb.PrimaryLoad(); got > maxLoad+0.001 {
			t.Errorf("max load %.2f: primary load %.3f exceeds threshold", maxLoad, got)
		}
		if got := tb.PrimaryLoad(); got < maxLoad-0.15 {
			t.Errorf("max load %.2f: primary load %.3f far under threshold", maxLoad, got)
		}
	}
}

// TestSearchCost: successful searches touch few pages (short chains) at
// moderate load.
func TestSearchCost(t *testing.T) {
	tb := newTable(t, Config{Capacity: 20, MaxLoad: 0.75})
	keys := make([]string, 10000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i*13)
		tb.Put(keys[i], nil)
	}
	tb.ResetAccesses()
	for _, k := range keys[:2000] {
		if _, err := tb.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	per := float64(tb.Accesses()) / 2000
	if per > 1.4 {
		t.Errorf("%.2f page touches per search; chains too long", per)
	}
	if tb.AvgChain() > 1.5 {
		t.Errorf("avg chain %.2f", tb.AvgChain())
	}
}

// TestInsertionOrderInsensitive: unlike trie hashing, linear hashing's
// load does not depend on the key arrival order.
func TestInsertionOrderInsensitive(t *testing.T) {
	keys := make([]string, 8000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i*7)
	}
	asc := newTable(t, Config{Capacity: 10})
	for _, k := range keys {
		asc.Put(k, nil)
	}
	rng := rand.New(rand.NewSource(1))
	shuffled := append([]string(nil), keys...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	rnd := newTable(t, Config{Capacity: 10})
	for _, k := range shuffled {
		rnd.Put(k, nil)
	}
	if a, b := asc.Load(), rnd.Load(); a != b {
		t.Errorf("order changed the load: %.4f vs %.4f", a, b)
	}
}
