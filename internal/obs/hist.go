package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log-spaced latency buckets: bucket i counts
// samples whose nanosecond duration has bit length i, i.e. durations in
// [2^(i-1), 2^i). 48 buckets span 1 ns to ~78 hours, which covers any
// operation latency this system can produce.
const histBuckets = 48

// Histogram is a lock-free log-bucketed latency histogram. Bucket
// boundaries are powers of two nanoseconds, so recording is a bit-length
// computation plus one atomic increment, and any quantile estimate is
// within a factor of two of the true sample (the bucket's upper bound is
// returned; the true value is above half of it).
//
// The zero value is ready to use. All methods are safe for concurrent use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// histBucket returns the bucket index for a duration of ns nanoseconds.
func histBucket(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// BucketUpper returns the exclusive upper bound of bucket i, the value
// quantile estimation reports for samples landing in it.
func BucketUpper(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	if i >= histBuckets-1 {
		return time.Duration(int64(1) << (histBuckets - 1))
	}
	return time.Duration(int64(1) << i)
}

// Record adds one sample. Two atomic adds and a max check: there is no
// separate total-sample counter — Count sums the buckets, which only
// snapshot-time readers pay for.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	h.counts[histBucket(ns)].Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			return
		}
	}
}

// Count returns the number of recorded samples (a 48-bucket sum; cheap
// relative to snapshotting, deliberately not an extra atomic on Record).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the total recorded duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest recorded sample (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the average recorded duration.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Quantile returns an upper-bound estimate of the q-th quantile
// (0 <= q <= 1): the upper boundary of the bucket holding the ceil(q*n)-th
// smallest sample. The true sample value v satisfies est/2 <= v <= est.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(histBuckets - 1)
}

// reset zeroes every counter. Not atomic with respect to concurrent
// Records; callers reset between measured phases.
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
	h.max.Store(0)
}

// HistSnapshot is a point-in-time summary of a Histogram.
type HistSnapshot struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Mean  time.Duration `json:"mean_ns"`
	Max   time.Duration `json:"max_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}
