package obs

import "net"

// newListener binds a TCP listener for Serve; split out so tests can bind
// port 0 without importing net in callers.
func newListener(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}
