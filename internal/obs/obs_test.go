package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the log-bucketing: a sample of n
// nanoseconds lands in the bucket whose range [2^(i-1), 2^i) contains it,
// and the reported quantile is that bucket's upper bound.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns    int64
		upper time.Duration
	}{
		{0, 0}, // bucket 0: the zero duration
		{1, 2}, // [1,2) -> upper 2
		{2, 4}, // [2,4)
		{3, 4},
		{4, 8},
		{1023, 1024},
		{1024, 2048},
		{1 << 30, 1 << 31},
		{(1 << 31) - 1, 1 << 31},
	}
	for _, c := range cases {
		var h Histogram
		h.Record(time.Duration(c.ns))
		if got := h.Quantile(1); got != c.upper {
			t.Errorf("Record(%dns): quantile upper bound %v, want %v", c.ns, got, c.upper)
		}
		if h.Max() != time.Duration(c.ns) {
			t.Errorf("Record(%dns): max %v", c.ns, h.Max())
		}
	}
	// Negative durations (clock steps) clamp to bucket 0 instead of
	// corrupting the ring.
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Quantile(1) != 0 {
		t.Errorf("negative sample: count=%d q=%v", h.Count(), h.Quantile(1))
	}
}

// TestHistogramQuantileErrorBound verifies the factor-of-two guarantee:
// for any recorded sample set, the estimate e of quantile q satisfies
// v <= e <= 2v where v is the true q-th smallest sample (v > 0).
func TestHistogramQuantileErrorBound(t *testing.T) {
	samples := []int64{1, 3, 7, 10, 50, 120, 999, 1024, 5000, 100000}
	var h Histogram
	for _, s := range samples {
		h.Record(time.Duration(s))
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0} {
		rank := int(q * float64(len(samples)))
		if rank < 1 {
			rank = 1
		}
		truth := samples[rank-1]
		est := int64(h.Quantile(q))
		if est < truth || est > 2*truth {
			t.Errorf("q=%.2f: estimate %d outside [v, 2v] for true sample %d", q, est, truth)
		}
	}
	if h.Quantile(0.5) > h.Quantile(0.99) {
		t.Error("quantiles are not monotone")
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race this proves the recording path is data-race free, and the
// totals prove no sample is lost.
func TestHistogramConcurrent(t *testing.T) {
	const workers, perWorker = 8, 10000
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(time.Duration(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("count %d, want %d", h.Count(), workers*perWorker)
	}
	if h.Max() != time.Duration((workers-1)*1000+perWorker-1) {
		t.Fatalf("max %v", h.Max())
	}
}

// TestTracerOverflowAndOrdering pins the ring semantics: capacity bounds
// retention, sequence numbers never reset, retained events stay ordered,
// and Dropped counts the evictions.
func TestTracerOverflowAndOrdering(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Append(Event{Type: EvSplit, Addr: int32(i)})
	}
	if tr.Total() != 10 {
		t.Fatalf("total %d", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", tr.Dropped())
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, e := range got {
		wantSeq := uint64(6 + i)
		if e.Seq != wantSeq || e.Addr != int32(wantSeq) {
			t.Fatalf("event %d: seq=%d addr=%d, want seq=%d", i, e.Seq, e.Addr, wantSeq)
		}
	}
	// Since tails: asking from the middle of the retained window trims,
	// asking past the end returns nothing, asking below the window
	// returns the whole window (the gap is visible via Seq jumps).
	if got := tr.Since(8); len(got) != 2 || got[0].Seq != 8 {
		t.Fatalf("Since(8): %+v", got)
	}
	if got := tr.Since(10); got != nil {
		t.Fatalf("Since(10): %+v", got)
	}
	if got := tr.Since(2); len(got) != 4 || got[0].Seq != 6 {
		t.Fatalf("Since(2): %+v", got)
	}
}

// TestTracerConcurrent appends from many goroutines; under -race this
// checks the locking, and the final totals check nothing was lost.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	const workers, per = 4, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Append(Event{Type: EvMerge})
			}
		}()
	}
	wg.Wait()
	if tr.Total() != workers*per {
		t.Fatalf("total %d", tr.Total())
	}
	evs := tr.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("retained %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence gap: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestObserverNilSafety: every method must be a no-op on a nil observer
// and a nil hook — the guarantee the zero-overhead hot path rests on.
func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	o.RecordOp(OpGet, time.Microsecond)
	o.Emit(Event{Type: EvSplit})
	o.ResetCounters()
	o.SetStateFunc(func() State { return State{} })
	if o.EventCount(EvSplit) != 0 || o.Op(OpGet) != nil || o.Events() != nil {
		t.Error("nil observer must report zeros")
	}
	if (o.State() != State{}) || (o.SnapshotSince(0).NextSeq != 0) {
		t.Error("nil observer snapshot must be empty")
	}
	var h *Hook
	h.Set(New(Config{}))
	if h.Observer() != nil || h.Enabled() {
		t.Error("nil hook must stay detached")
	}
}

// TestObserverTraceIOGating: high-frequency events are always counted but
// enter the ring only with TraceIO.
func TestObserverTraceIOGating(t *testing.T) {
	quiet := New(Config{TraceDepth: 16})
	quiet.Emit(Event{Type: EvCacheHit})
	quiet.Emit(Event{Type: EvSplit})
	if quiet.EventCount(EvCacheHit) != 1 {
		t.Error("cache hit not counted")
	}
	if evs := quiet.Events().Snapshot(); len(evs) != 1 || evs[0].Type != EvSplit {
		t.Errorf("ring without TraceIO: %+v", evs)
	}
	loud := New(Config{TraceDepth: 16, TraceIO: true})
	loud.Emit(Event{Type: EvCacheHit})
	if evs := loud.Events().Snapshot(); len(evs) != 1 || evs[0].Type != EvCacheHit {
		t.Errorf("ring with TraceIO: %+v", evs)
	}
}

// TestExportSurfaces drives the HTTP handler: Prometheus text and the
// JSON snapshot with since-tailing.
func TestExportSurfaces(t *testing.T) {
	o := New(Config{TraceDepth: 8})
	o.RecordOp(OpGet, 100*time.Nanosecond)
	o.Emit(Event{Type: EvSplit, Addr: 3, Addr2: 4, Keys: 21, Buckets: 2})
	o.SetStateFunc(func() State { return State{Keys: 21, Buckets: 2, Load: 0.84, TrieCells: 1} })

	h := Handler(o)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`th_op_total{op="get"} 1`,
		`th_events_total{type="split"} 1`,
		"th_keys 21",
		"th_load 0.84",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/obs.json", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("obs.json: %v", err)
	}
	if snap.State.Keys != 21 || snap.NextSeq != 1 || len(snap.Events) != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap.Ops["get"].Count != 1 || snap.EventCounts["split"] != 1 {
		t.Fatalf("snapshot ops/events: %+v", snap)
	}

	// Tailing: since=NextSeq returns no events.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/obs.json?since=1", nil))
	var tail Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &tail); err != nil {
		t.Fatal(err)
	}
	if len(tail.Events) != 0 || tail.NextSeq != 1 {
		t.Fatalf("tail: %+v", tail)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/obs.json?since=x", nil))
	if rec.Code != 400 {
		t.Fatalf("bad since: status %d", rec.Code)
	}
}

// TestObserverReset: counters clear, the ring and its sequencing survive.
func TestObserverReset(t *testing.T) {
	o := New(Config{TraceDepth: 8})
	o.RecordOp(OpPut, time.Millisecond)
	o.Emit(Event{Type: EvSplit})
	o.ResetCounters()
	if o.Op(OpPut).Count() != 0 || o.EventCount(EvSplit) != 0 {
		t.Error("counters survived reset")
	}
	if o.Events().Total() != 1 {
		t.Error("ring must survive reset")
	}
	if seq := o.Events().Append(Event{Type: EvMerge}); seq != 1 {
		t.Errorf("sequence restarted: %d", seq)
	}
}
