package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"triehash/internal/format"
)

// Snapshot is the JSON form of everything an Observer holds; cmd/thstat
// tails a live run by polling it with ?since=NextSeq.
type Snapshot struct {
	State       State                   `json:"state"`
	Ops         map[string]HistSnapshot `json:"ops"`
	EventCounts map[string]uint64       `json:"event_counts"`
	Events      []Event                 `json:"events,omitempty"`
	// NextSeq is the sequence number the next event will get; pass it
	// back as ?since= to receive only newer events.
	NextSeq uint64 `json:"next_seq"`
	// Dropped counts events evicted from the ring over its lifetime.
	Dropped uint64 `json:"dropped"`
	// Stages holds the per-stage span histograms (Config.Spans only).
	Stages map[string]HistSnapshot `json:"stages,omitempty"`
	// Contention is the top-K most latch-contended buckets by accumulated
	// wait, descending.
	Contention []BucketContention `json:"contention,omitempty"`
	// StructLock is the structural (flip) lock's accumulated wait and
	// occupancy.
	StructLock *BucketContention `json:"struct_lock,omitempty"`
	// Stripes is the per-stripe wait/hold of the subtree lock table,
	// ascending by stripe index (Addr carries the index).
	Stripes []BucketContention `json:"stripes,omitempty"`
	// SlowOps is the flight recorder's retained span breakdowns (oldest
	// first); SlowOpsTotal the lifetime count of slow ops captured.
	SlowOps      []SpanRecord `json:"slow_ops,omitempty"`
	SlowOpsTotal uint64       `json:"slow_ops_total,omitempty"`
	// Format holds the process-wide on-disk encoding rollout counters:
	// pages read and written per version, and bytes saved by v2 writes.
	Format format.Stats `json:"format"`
}

// contentionTopK bounds the contention rows a snapshot carries.
const contentionTopK = 16

// SnapshotSince summarizes the observer and includes the retained events
// with Seq >= since.
func (o *Observer) SnapshotSince(since uint64) Snapshot {
	if o == nil {
		return Snapshot{}
	}
	s := Snapshot{
		State:       o.State(),
		Ops:         make(map[string]HistSnapshot, int(numOps)),
		EventCounts: make(map[string]uint64, int(numEventTypes)),
	}
	for _, op := range Ops() {
		if h := o.Op(op); h.Count() > 0 {
			s.Ops[op.String()] = h.Snapshot()
		}
	}
	for _, t := range EventTypes() {
		if n := o.EventCount(t); n > 0 {
			s.EventCounts[t.String()] = n
		}
	}
	s.Events = o.tracer.Since(since)
	s.NextSeq = o.tracer.Total()
	s.Dropped = o.tracer.Dropped()
	s.Format = format.StatsSnapshot()
	if o.cfg.Spans {
		s.Stages = make(map[string]HistSnapshot, int(numStages))
		for _, st := range Stages() {
			if h := o.Stage(st); h.Count() > 0 {
				s.Stages[st.String()] = h.Snapshot()
			}
		}
		s.Contention = o.TopContended(contentionTopK)
		if sc := o.StructuralContention(); sc.Count > 0 {
			s.StructLock = &sc
		}
		s.Stripes = o.StripeContention()
		s.SlowOps, s.SlowOpsTotal = o.SlowOps()
	}
	return s
}

// WritePrometheus renders the observer in the Prometheus text exposition
// format: operation counts and latency quantiles, event totals, and the
// structure gauges of the state provider.
func (o *Observer) WritePrometheus(w io.Writer) {
	if o == nil {
		return
	}
	secs := func(d time.Duration) string {
		return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
	}
	fmt.Fprintf(w, "# HELP th_op_total Operations performed, by operation.\n# TYPE th_op_total counter\n")
	for _, op := range Ops() {
		fmt.Fprintf(w, "th_op_total{op=%q} %d\n", op.String(), o.Op(op).Count())
	}
	fmt.Fprintf(w, "# HELP th_op_latency_seconds Operation latency quantile upper bounds.\n# TYPE th_op_latency_seconds gauge\n")
	for _, op := range Ops() {
		h := o.Op(op)
		if h.Count() == 0 {
			continue
		}
		for _, q := range []struct {
			label string
			v     time.Duration
		}{
			{"0.5", h.Quantile(0.5)},
			{"0.95", h.Quantile(0.95)},
			{"0.99", h.Quantile(0.99)},
			{"1", h.Max()},
		} {
			fmt.Fprintf(w, "th_op_latency_seconds{op=%q,quantile=%q} %s\n", op.String(), q.label, secs(q.v))
		}
	}
	fmt.Fprintf(w, "# HELP th_events_total Structural events emitted, by type.\n# TYPE th_events_total counter\n")
	for _, t := range EventTypes() {
		fmt.Fprintf(w, "th_events_total{type=%q} %d\n", t.String(), o.EventCount(t))
	}
	if o.cfg.Spans {
		fmt.Fprintf(w, "# HELP th_span_stage_total Spans that touched the stage.\n# TYPE th_span_stage_total counter\n")
		for _, sg := range Stages() {
			if n := o.Stage(sg).Count(); n > 0 {
				fmt.Fprintf(w, "th_span_stage_total{stage=%q} %d\n", sg.String(), n)
			}
		}
		fmt.Fprintf(w, "# HELP th_span_stage_seconds_total Accumulated time per span stage.\n# TYPE th_span_stage_seconds_total counter\n")
		for _, sg := range Stages() {
			if h := o.Stage(sg); h.Count() > 0 {
				fmt.Fprintf(w, "th_span_stage_seconds_total{stage=%q} %s\n", sg.String(), secs(h.Sum()))
			}
		}
		fmt.Fprintf(w, "# HELP th_span_stage_seconds Span stage duration quantile upper bounds.\n# TYPE th_span_stage_seconds gauge\n")
		for _, sg := range Stages() {
			h := o.Stage(sg)
			if h.Count() == 0 {
				continue
			}
			fmt.Fprintf(w, "th_span_stage_seconds{stage=%q,quantile=\"0.5\"} %s\n", sg.String(), secs(h.Quantile(0.5)))
			fmt.Fprintf(w, "th_span_stage_seconds{stage=%q,quantile=\"0.99\"} %s\n", sg.String(), secs(h.Quantile(0.99)))
		}
		sc := o.StructuralContention()
		fmt.Fprintf(w, "# HELP th_struct_lock_seconds_total Structural (flip) lock time by phase.\n# TYPE th_struct_lock_seconds_total counter\n")
		fmt.Fprintf(w, "th_struct_lock_seconds_total{phase=\"wait\"} %s\nth_struct_lock_seconds_total{phase=\"hold\"} %s\n",
			secs(sc.Wait), secs(sc.Hold))
		if stripes := o.StripeContention(); len(stripes) > 0 {
			fmt.Fprintf(w, "# HELP th_stripe_lock_seconds_total Subtree stripe lock time by stripe and phase.\n# TYPE th_stripe_lock_seconds_total counter\n")
			for _, st := range stripes {
				fmt.Fprintf(w, "th_stripe_lock_seconds_total{stripe=\"%d\",phase=\"wait\"} %s\n", st.Addr, secs(st.Wait))
				fmt.Fprintf(w, "th_stripe_lock_seconds_total{stripe=\"%d\",phase=\"hold\"} %s\n", st.Addr, secs(st.Hold))
			}
		}
		fmt.Fprintf(w, "# HELP th_latch_contention_seconds_total Accumulated latch wait/hold of the most-contended buckets.\n# TYPE th_latch_contention_seconds_total counter\n")
		for _, bc := range o.TopContended(8) {
			fmt.Fprintf(w, "th_latch_contention_seconds_total{addr=\"%d\",phase=\"wait\"} %s\n", bc.Addr, secs(bc.Wait))
			fmt.Fprintf(w, "th_latch_contention_seconds_total{addr=\"%d\",phase=\"hold\"} %s\n", bc.Addr, secs(bc.Hold))
		}
		_, slowTotal := o.SlowOps()
		fmt.Fprintf(w, "# HELP th_slow_ops_total Operations captured by the slow-op flight recorder.\n# TYPE th_slow_ops_total counter\nth_slow_ops_total %d\n", slowTotal)
	}
	fs := format.StatsSnapshot()
	fmt.Fprintf(w, "# HELP th_format_pages_read_total Bucket pages decoded, by on-disk version.\n# TYPE th_format_pages_read_total counter\n")
	fmt.Fprintf(w, "th_format_pages_read_total{version=\"1\"} %d\nth_format_pages_read_total{version=\"2\"} %d\n",
		fs.PagesReadV1, fs.PagesReadV2)
	fmt.Fprintf(w, "# HELP th_format_pages_written_total Bucket pages encoded, by on-disk version.\n# TYPE th_format_pages_written_total counter\n")
	fmt.Fprintf(w, "th_format_pages_written_total{version=\"1\"} %d\nth_format_pages_written_total{version=\"2\"} %d\n",
		fs.PagesWrittenV1, fs.PagesWrittenV2)
	fmt.Fprintf(w, "# HELP th_format_bytes_saved_total Bytes saved by v2 page writes against their v1 encoding.\n# TYPE th_format_bytes_saved_total counter\nth_format_bytes_saved_total %d\n",
		fs.BytesSaved)
	st := o.State()
	fmt.Fprintf(w, "# HELP th_keys Records in the file.\n# TYPE th_keys gauge\nth_keys %d\n", st.Keys)
	fmt.Fprintf(w, "# HELP th_buckets Allocated buckets.\n# TYPE th_buckets gauge\nth_buckets %d\n", st.Buckets)
	fmt.Fprintf(w, "# HELP th_load Bucket load factor.\n# TYPE th_load gauge\nth_load %s\n",
		strconv.FormatFloat(st.Load, 'g', -1, 64))
	fmt.Fprintf(w, "# HELP th_trie_cells Trie size M in cells.\n# TYPE th_trie_cells gauge\nth_trie_cells %d\n", st.TrieCells)
	fmt.Fprintf(w, "# HELP th_depth Longest trie search path.\n# TYPE th_depth gauge\nth_depth %d\n", st.Depth)
	fmt.Fprintf(w, "# HELP th_trace_dropped_total Events evicted from the trace ring.\n# TYPE th_trace_dropped_total counter\nth_trace_dropped_total %d\n",
		o.tracer.Dropped())
}

// Handler serves the observer over HTTP:
//
//	/metrics   Prometheus text exposition
//	/obs.json  JSON Snapshot; ?since=N tails the event stream
func Handler(o *Observer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		o.WritePrometheus(w)
	})
	mux.HandleFunc("/obs.json", func(w http.ResponseWriter, r *http.Request) {
		since := uint64(0)
		if s := r.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since parameter", http.StatusBadRequest)
				return
			}
			since = v
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(o.SnapshotSince(since))
	})
	return mux
}

// PublishExpvar registers the observer's snapshot under the given expvar
// name (idempotent: re-publishing the same name is a no-op, unlike
// expvar.Publish, which panics).
func (o *Observer) PublishExpvar(name string) {
	if o == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return o.SnapshotSince(0) }))
}

// NewServeMux wires the full diagnostics surface for a -metrics-addr
// listener: the observer endpoints, expvar under /debug/vars, and
// net/http/pprof under /debug/pprof/.
func NewServeMux(o *Observer) *http.ServeMux {
	o.PublishExpvar("triehash")
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(o))
	mux.Handle("/obs.json", Handler(o))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// WriteSpanPanel renders a snapshot's span data as text: the per-stage
// breakdown, the top contended buckets, the structural lock share and the
// flight recorder's slow ops. It is the contention/tail panel cmd/thstat
// shows and the end-of-run summary cmd/thbench and cmd/thload print.
// Nothing is written when the snapshot carries no span data.
func WriteSpanPanel(w io.Writer, s Snapshot) {
	if len(s.Stages) == 0 {
		return
	}
	var totalStage time.Duration
	for _, h := range s.Stages {
		totalStage += h.Sum
	}
	fmt.Fprintf(w, "span stages (total %v):\n", totalStage.Round(time.Microsecond))
	fmt.Fprintf(w, "  %-13s %10s %12s %7s %10s %10s\n", "stage", "spans", "total", "share", "p50", "p99")
	for _, sg := range Stages() {
		h, ok := s.Stages[sg.String()]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-13s %10d %12v %6.1f%% %10v %10v\n",
			sg.String(), h.Count, h.Sum.Round(time.Microsecond),
			float64(h.Sum)/float64(totalStage)*100, h.P50, h.P99)
	}
	if s.StructLock != nil && s.StructLock.Count > 0 {
		sc := s.StructLock
		fmt.Fprintf(w, "flip lock: %d acquisitions, wait %v (%.1f%% of span time), hold %v\n",
			sc.Count, sc.Wait.Round(time.Microsecond),
			float64(sc.Wait)/float64(totalStage)*100, sc.Hold.Round(time.Microsecond))
	}
	if len(s.Stripes) > 0 {
		var w8, h8 time.Duration
		var n8 int64
		for _, st := range s.Stripes {
			w8 += st.Wait
			h8 += st.Hold
			n8 += st.Count
		}
		fmt.Fprintf(w, "subtree stripes: %d active, %d acquisitions, wait %v, hold %v\n",
			len(s.Stripes), n8, w8.Round(time.Microsecond), h8.Round(time.Microsecond))
		fmt.Fprintf(w, "  %-8s %12s %12s %10s\n", "stripe", "wait", "hold", "acquires")
		for _, st := range s.Stripes {
			fmt.Fprintf(w, "  %-8d %12v %12v %10d\n",
				st.Addr, st.Wait.Round(time.Microsecond), st.Hold.Round(time.Microsecond), st.Count)
		}
	}
	if len(s.Contention) > 0 {
		fmt.Fprintf(w, "contended buckets (top %d by latch wait):\n", len(s.Contention))
		fmt.Fprintf(w, "  %-8s %12s %12s %11s %10s\n", "addr", "wait", "hold", "wait/hold", "acquires")
		for _, bc := range s.Contention {
			ratio := "-"
			if bc.Hold > 0 {
				ratio = strconv.FormatFloat(float64(bc.Wait)/float64(bc.Hold), 'f', 2, 64)
			}
			fmt.Fprintf(w, "  %-8d %12v %12v %11s %10d\n",
				bc.Addr, bc.Wait.Round(time.Microsecond), bc.Hold.Round(time.Microsecond), ratio, bc.Count)
		}
	}
	if s.SlowOpsTotal > 0 {
		fmt.Fprintf(w, "slow ops: %d captured, %d retained:\n", s.SlowOpsTotal, len(s.SlowOps))
		for _, r := range s.SlowOps {
			fmt.Fprintf(w, "  #%d %s total=%v", r.Seq, r.Op, r.Total.Round(time.Microsecond))
			for _, sg := range Stages() {
				if d, ok := r.Stages[sg.String()]; ok {
					fmt.Fprintf(w, " %s=%v", sg.String(), d.Round(time.Microsecond))
				}
			}
			if r.WorstAddr >= 0 {
				fmt.Fprintf(w, " worst_latch=bucket %d (%v)", r.WorstAddr, r.WorstWait.Round(time.Microsecond))
			}
			fmt.Fprintln(w)
		}
	}
}

// Serve starts an HTTP server for the observer on addr in a background
// goroutine and returns the listener address actually bound (so addr may
// use port 0). The server runs until the process exits.
func Serve(addr string, o *Observer) (string, error) {
	mux := NewServeMux(o)
	srv := &http.Server{Addr: addr, Handler: mux}
	ln, err := newListener(addr)
	if err != nil {
		return "", err
	}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
