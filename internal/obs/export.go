package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Snapshot is the JSON form of everything an Observer holds; cmd/thstat
// tails a live run by polling it with ?since=NextSeq.
type Snapshot struct {
	State       State                   `json:"state"`
	Ops         map[string]HistSnapshot `json:"ops"`
	EventCounts map[string]uint64       `json:"event_counts"`
	Events      []Event                 `json:"events,omitempty"`
	// NextSeq is the sequence number the next event will get; pass it
	// back as ?since= to receive only newer events.
	NextSeq uint64 `json:"next_seq"`
	// Dropped counts events evicted from the ring over its lifetime.
	Dropped uint64 `json:"dropped"`
}

// SnapshotSince summarizes the observer and includes the retained events
// with Seq >= since.
func (o *Observer) SnapshotSince(since uint64) Snapshot {
	if o == nil {
		return Snapshot{}
	}
	s := Snapshot{
		State:       o.State(),
		Ops:         make(map[string]HistSnapshot, int(numOps)),
		EventCounts: make(map[string]uint64, int(numEventTypes)),
	}
	for _, op := range Ops() {
		if h := o.Op(op); h.Count() > 0 {
			s.Ops[op.String()] = h.Snapshot()
		}
	}
	for _, t := range EventTypes() {
		if n := o.EventCount(t); n > 0 {
			s.EventCounts[t.String()] = n
		}
	}
	s.Events = o.tracer.Since(since)
	s.NextSeq = o.tracer.Total()
	s.Dropped = o.tracer.Dropped()
	return s
}

// WritePrometheus renders the observer in the Prometheus text exposition
// format: operation counts and latency quantiles, event totals, and the
// structure gauges of the state provider.
func (o *Observer) WritePrometheus(w io.Writer) {
	if o == nil {
		return
	}
	secs := func(d time.Duration) string {
		return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
	}
	fmt.Fprintf(w, "# HELP th_op_total Operations performed, by operation.\n# TYPE th_op_total counter\n")
	for _, op := range Ops() {
		fmt.Fprintf(w, "th_op_total{op=%q} %d\n", op.String(), o.Op(op).Count())
	}
	fmt.Fprintf(w, "# HELP th_op_latency_seconds Operation latency quantile upper bounds.\n# TYPE th_op_latency_seconds gauge\n")
	for _, op := range Ops() {
		h := o.Op(op)
		if h.Count() == 0 {
			continue
		}
		for _, q := range []struct {
			label string
			v     time.Duration
		}{
			{"0.5", h.Quantile(0.5)},
			{"0.95", h.Quantile(0.95)},
			{"0.99", h.Quantile(0.99)},
			{"1", h.Max()},
		} {
			fmt.Fprintf(w, "th_op_latency_seconds{op=%q,quantile=%q} %s\n", op.String(), q.label, secs(q.v))
		}
	}
	fmt.Fprintf(w, "# HELP th_events_total Structural events emitted, by type.\n# TYPE th_events_total counter\n")
	for _, t := range EventTypes() {
		fmt.Fprintf(w, "th_events_total{type=%q} %d\n", t.String(), o.EventCount(t))
	}
	st := o.State()
	fmt.Fprintf(w, "# HELP th_keys Records in the file.\n# TYPE th_keys gauge\nth_keys %d\n", st.Keys)
	fmt.Fprintf(w, "# HELP th_buckets Allocated buckets.\n# TYPE th_buckets gauge\nth_buckets %d\n", st.Buckets)
	fmt.Fprintf(w, "# HELP th_load Bucket load factor.\n# TYPE th_load gauge\nth_load %s\n",
		strconv.FormatFloat(st.Load, 'g', -1, 64))
	fmt.Fprintf(w, "# HELP th_trie_cells Trie size M in cells.\n# TYPE th_trie_cells gauge\nth_trie_cells %d\n", st.TrieCells)
	fmt.Fprintf(w, "# HELP th_depth Longest trie search path.\n# TYPE th_depth gauge\nth_depth %d\n", st.Depth)
	fmt.Fprintf(w, "# HELP th_trace_dropped_total Events evicted from the trace ring.\n# TYPE th_trace_dropped_total counter\nth_trace_dropped_total %d\n",
		o.tracer.Dropped())
}

// Handler serves the observer over HTTP:
//
//	/metrics   Prometheus text exposition
//	/obs.json  JSON Snapshot; ?since=N tails the event stream
func Handler(o *Observer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		o.WritePrometheus(w)
	})
	mux.HandleFunc("/obs.json", func(w http.ResponseWriter, r *http.Request) {
		since := uint64(0)
		if s := r.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since parameter", http.StatusBadRequest)
				return
			}
			since = v
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(o.SnapshotSince(since))
	})
	return mux
}

// PublishExpvar registers the observer's snapshot under the given expvar
// name (idempotent: re-publishing the same name is a no-op, unlike
// expvar.Publish, which panics).
func (o *Observer) PublishExpvar(name string) {
	if o == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return o.SnapshotSince(0) }))
}

// NewServeMux wires the full diagnostics surface for a -metrics-addr
// listener: the observer endpoints, expvar under /debug/vars, and
// net/http/pprof under /debug/pprof/.
func NewServeMux(o *Observer) *http.ServeMux {
	o.PublishExpvar("triehash")
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(o))
	mux.Handle("/obs.json", Handler(o))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for the observer on addr in a background
// goroutine and returns the listener address actually bound (so addr may
// use port 0). The server runs until the process exits.
func Serve(addr string, o *Observer) (string, error) {
	mux := NewServeMux(o)
	srv := &http.Server{Addr: addr, Handler: mux}
	ln, err := newListener(addr)
	if err != nil {
		return "", err
	}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
