package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSpanNilSafe(t *testing.T) {
	var o *Observer
	sp := o.StartSpan(OpGet)
	if sp != nil {
		t.Fatalf("nil observer StartSpan = %v, want nil", sp)
	}
	// Every span method must no-op on nil.
	sp.Mark(StageTrieSearch)
	sp.Add(StageStoreRead, time.Millisecond)
	sp.BeginHold(3, StageLatchWait)
	sp.EndHold(StageLatchHold)
	_ = sp.Op()
	o.FinishSpan(sp)
	o.RecordContention(1, time.Millisecond, time.Millisecond)
	if got := o.TopContended(4); got != nil {
		t.Fatalf("nil observer TopContended = %v, want nil", got)
	}
	if recs, n := o.SlowOps(); recs != nil || n != 0 {
		t.Fatalf("nil observer SlowOps = %v, %d", recs, n)
	}
	lt := o.StartLatch(7)
	lt.Acquired()
	lt.Release()
}

func TestSpanDisabledByConfig(t *testing.T) {
	o := New(Config{}) // Spans off
	if o.SpansEnabled() {
		t.Fatal("SpansEnabled with Spans unset")
	}
	if sp := o.StartSpan(OpGet); sp != nil {
		t.Fatalf("StartSpan with spans off = %v, want nil", sp)
	}
	o.RecordContention(1, time.Millisecond, time.Millisecond)
	if rows := o.TopContended(4); len(rows) != 0 {
		t.Fatalf("contention recorded with spans off: %v", rows)
	}
}

func TestSpanStagesSumToTotal(t *testing.T) {
	o := New(Config{Spans: true})
	sp := o.StartSpan(OpPut)
	if sp == nil {
		t.Fatal("StartSpan returned nil with spans on")
	}
	time.Sleep(time.Millisecond)
	sp.Mark(StageTrieSearch)
	time.Sleep(time.Millisecond)
	sp.Mark(StageStoreWrite)
	o.FinishSpan(sp)

	total := time.Duration(o.Op(OpPut).Sum())
	var stageSum time.Duration
	for _, s := range Stages() {
		stageSum += time.Duration(o.Stage(s).Sum())
	}
	if total == 0 {
		t.Fatal("whole-op histogram got no sample")
	}
	// Sequential-mark attribution: stage charges partition the total
	// exactly (clock granularity aside).
	if diff := total - stageSum; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("stages sum %v, whole-op total %v (diff %v)", stageSum, total, diff)
	}
	if o.Stage(StageTrieSearch).Count() != 1 || o.Stage(StageStoreWrite).Count() != 1 {
		t.Fatal("marked stages missing their samples")
	}
	if o.Stage(StageTrieSearch).Sum() < time.Millisecond/2 {
		t.Fatalf("trie_search charged only %v", o.Stage(StageTrieSearch).Sum())
	}
}

func TestSpanHoldsFeedContentionTable(t *testing.T) {
	o := New(Config{Spans: true})
	sp := o.StartSpan(OpPut)
	sp.BeginHold(42, StageLatchWait)
	time.Sleep(time.Millisecond)
	sp.EndHold(StageLatchHold)
	sp.BeginHold(structAddr, StageStructWait)
	sp.EndHold(StageStructHold)
	o.FinishSpan(sp)

	rows := o.TopContended(8)
	if len(rows) != 1 || rows[0].Addr != 42 {
		t.Fatalf("TopContended = %+v, want one row for bucket 42", rows)
	}
	if rows[0].Count != 1 || rows[0].Hold < time.Millisecond/2 {
		t.Fatalf("bucket 42 row = %+v, want count 1, hold >= ~1ms", rows[0])
	}
	sc := o.StructuralContention()
	if sc.Addr != structAddr || sc.Count != 1 {
		t.Fatalf("StructuralContention = %+v, want count 1 at addr -1", sc)
	}
}

func TestTopContendedOrdering(t *testing.T) {
	o := New(Config{Spans: true})
	o.RecordContention(5, 3*time.Millisecond, time.Millisecond)
	o.RecordContention(9, 7*time.Millisecond, time.Millisecond)
	o.RecordContention(2, time.Millisecond, time.Millisecond)
	rows := o.TopContended(2)
	if len(rows) != 2 || rows[0].Addr != 9 || rows[1].Addr != 5 {
		t.Fatalf("TopContended(2) = %+v, want buckets 9 then 5", rows)
	}
}

func TestFlightRecorderFixedThreshold(t *testing.T) {
	o := New(Config{Spans: true, SlowOp: time.Millisecond, SlowOpDepth: 2})

	fast := o.StartSpan(OpGet)
	o.FinishSpan(fast)
	if recs, n := o.SlowOps(); len(recs) != 0 || n != 0 {
		t.Fatalf("fast op recorded as slow: %v, %d", recs, n)
	}

	for i := 0; i < 3; i++ {
		sp := o.StartSpan(OpGet)
		sp.BeginHold(int32(i), StageLatchWait)
		time.Sleep(2 * time.Millisecond)
		sp.EndHold(StageLatchHold)
		o.FinishSpan(sp)
	}
	recs, n := o.SlowOps()
	if n != 3 {
		t.Fatalf("lifetime slow-op count = %d, want 3", n)
	}
	if len(recs) != 2 {
		t.Fatalf("retained %d records, want ring depth 2", len(recs))
	}
	// Oldest-first: the ring dropped seq 0, kept 1 and 2.
	if recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("record seqs = %d, %d, want 1, 2", recs[0].Seq, recs[1].Seq)
	}
	r := recs[1]
	if r.Op != OpGet || r.Total < 2*time.Millisecond {
		t.Fatalf("record = %+v, want OpGet with total >= 2ms", r)
	}
	if r.Stages["latch_hold"] < time.Millisecond {
		t.Fatalf("record stages = %v, want latch_hold >= 1ms", r.Stages)
	}
	if r.WorstAddr != 2 {
		t.Fatalf("record worst addr = %d, want 2", r.WorstAddr)
	}
}

func TestFlightRecorderAdaptiveThreshold(t *testing.T) {
	o := New(Config{Spans: true}) // SlowOp 0 -> adaptive
	// Below adaptiveMin samples nothing is considered slow.
	for i := 0; i < adaptiveMin-1; i++ {
		o.FinishSpan(o.StartSpan(OpGet))
	}
	if _, n := o.SlowOps(); n != 0 {
		t.Fatalf("%d slow ops before the adaptive threshold armed", n)
	}
	// The arming finish derives p99 from the fast population; a much
	// slower op afterwards must be captured.
	o.FinishSpan(o.StartSpan(OpGet))
	if o.slowCutoff[OpGet].Load() == 0 {
		t.Fatal("adaptive cutoff not derived at the arming finish")
	}
	sp := o.StartSpan(OpGet)
	time.Sleep(5 * time.Millisecond)
	sp.Mark(StageStoreRead)
	o.FinishSpan(sp)
	if _, n := o.SlowOps(); n != 1 {
		t.Fatalf("slow op count = %d after an op ~1000x the armed p99", n)
	}
}

func TestSpanResetCounters(t *testing.T) {
	o := New(Config{Spans: true, SlowOp: time.Microsecond})
	sp := o.StartSpan(OpPut)
	sp.BeginHold(7, StageLatchWait)
	time.Sleep(time.Millisecond)
	sp.EndHold(StageLatchHold)
	o.FinishSpan(sp)

	o.ResetCounters()
	for _, s := range Stages() {
		if o.Stage(s).Count() != 0 {
			t.Fatalf("stage %v survived ResetCounters", s)
		}
	}
	if rows := o.TopContended(8); len(rows) != 0 {
		t.Fatalf("contention table survived ResetCounters: %v", rows)
	}
	if sc := o.StructuralContention(); sc.Count != 0 {
		t.Fatalf("structural cell survived ResetCounters: %+v", sc)
	}
	// The flight recorder is preserved, like the event ring.
	if _, n := o.SlowOps(); n != 1 {
		t.Fatalf("flight recorder lifetime count = %d after reset, want 1", n)
	}
}

func TestLatchTimer(t *testing.T) {
	o := New(Config{Spans: true})
	lt := o.StartLatch(11)
	time.Sleep(time.Millisecond)
	lt.Acquired()
	time.Sleep(time.Millisecond)
	lt.Release()
	rows := o.TopContended(1)
	if len(rows) != 1 || rows[0].Addr != 11 {
		t.Fatalf("TopContended = %+v, want bucket 11", rows)
	}
	if rows[0].Wait < time.Millisecond/2 || rows[0].Hold < time.Millisecond/2 {
		t.Fatalf("latch timer row = %+v, want ~1ms wait and hold", rows[0])
	}
}

func TestWriteSpanPanel(t *testing.T) {
	o := New(Config{Spans: true, SlowOp: time.Microsecond})
	sp := o.StartSpan(OpPut)
	sp.BeginHold(structAddr, StageStructWait)
	sp.BeginHold(42, StageLatchWait)
	time.Sleep(time.Millisecond)
	sp.EndHold(StageLatchHold)
	sp.EndHold(StageStructHold)
	o.FinishSpan(sp)

	var b strings.Builder
	WriteSpanPanel(&b, o.SnapshotSince(0))
	out := b.String()
	for _, want := range []string{"span stages", "latch_hold", "flip lock", "contended buckets", "42", "slow ops", "worst_latch=bucket 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("panel missing %q:\n%s", want, out)
		}
	}

	// No span data -> nothing rendered.
	b.Reset()
	WriteSpanPanel(&b, New(Config{}).SnapshotSince(0))
	if b.Len() != 0 {
		t.Fatalf("panel rendered without span data:\n%s", b.String())
	}
}
