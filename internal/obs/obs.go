// Package obs is the observability layer of the trie-hashing stack: atomic
// per-operation counters, log-bucketed latency histograms, a bounded
// structural event tracer, and export surfaces (Prometheus text, expvar,
// JSON snapshots for live tailing).
//
// The design constraint is zero overhead when nobody is watching. Every
// instrumented component holds a *Hook — a single atomic pointer to an
// Observer. With no observer attached the hot path pays one atomic load
// and a predictable branch, and allocates nothing; attaching an Observer
// (File.Observe in the public package) turns the full instrumentation on
// without locks or rebuilds. The paper states its whole evaluation in
// structural signals (load, trie size, splits, access counts); the tracer
// records exactly those transitions as they happen, so a load dip or an
// access spike can be explained mid-run instead of inferred from an
// end-of-run snapshot.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Op enumerates the instrumented operations: the file-level API calls and
// the store-level bucket transfers beneath them.
type Op uint8

const (
	// OpGet is a file-level key search.
	OpGet Op = iota
	// OpPut is a file-level insert/replace.
	OpPut
	// OpDelete is a file-level delete.
	OpDelete
	// OpRange is a file-level range scan.
	OpRange
	// OpGetBatch is a file-level multi-key search (one sample per batch).
	OpGetBatch
	// OpPutBatch is a file-level multi-key insert (one sample per batch).
	OpPutBatch
	// OpRead is a store-level bucket read.
	OpRead
	// OpWrite is a store-level bucket write.
	OpWrite
	// OpAlloc is a store-level bucket allocation.
	OpAlloc
	// OpFree is a store-level bucket free.
	OpFree

	numOps
)

var opNames = [numOps]string{
	OpGet:      "get",
	OpPut:      "put",
	OpDelete:   "delete",
	OpRange:    "range",
	OpGetBatch: "get_batch",
	OpPutBatch: "put_batch",
	OpRead:     "read",
	OpWrite:    "write",
	OpAlloc:    "alloc",
	OpFree:     "free",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// MarshalText renders the operation name.
func (op Op) MarshalText() ([]byte, error) { return []byte(op.String()), nil }

// UnmarshalText parses an operation name (the inverse of MarshalText).
func (op *Op) UnmarshalText(b []byte) error {
	for i, name := range opNames {
		if name == string(b) {
			*op = Op(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown op %q", b)
}

// Ops enumerates every instrumented operation in declaration order.
func Ops() []Op {
	out := make([]Op, numOps)
	for i := range out {
		out[i] = Op(i)
	}
	return out
}

// State is the cheap structure snapshot an Observer's state provider
// reports (gauges, as opposed to the counter families).
type State struct {
	Keys      int     `json:"keys"`
	Buckets   int     `json:"buckets"`
	Load      float64 `json:"load"`
	TrieCells int     `json:"trie_cells"`
	Depth     int     `json:"depth"`
	Levels    int     `json:"levels"`
	Pages     int     `json:"pages"`
}

// Config parameterizes an Observer.
type Config struct {
	// TraceDepth is the event ring capacity (default 4096).
	TraceDepth int
	// TraceIO additionally records the high-frequency per-access events
	// (cache hit/miss, page read) in the ring. Their counters are always
	// maintained; without TraceIO the ring keeps only structural events,
	// so splits and merges are not evicted by read traffic.
	TraceIO bool
	// Spans turns on stage-level span tracing: every instrumented
	// operation carries a Span recording its time per Stage, feeding the
	// per-stage histograms, the per-bucket contention table and the
	// slow-op flight recorder. Off, operations record only their whole-op
	// latency; the extra cost of off is a nil check per mark site.
	Spans bool
	// SlowOp is the flight-recorder admission threshold: finished spans
	// with a total at or above it are captured in full. 0 selects the
	// adaptive threshold — the op's rolling p99, armed after 256 samples.
	SlowOp time.Duration
	// SlowOpDepth is the flight-recorder ring capacity (default 64).
	SlowOpDepth int
}

// Observer aggregates everything one attached consumer sees: latency
// histograms per operation, per-type event totals, and the event ring.
// All methods are safe for concurrent use and nil-safe: calling them on a
// nil *Observer is a no-op, so instrumentation sites need no guards
// beyond the Hook's atomic load.
type Observer struct {
	cfg    Config
	ops    [numOps]Histogram
	events [numEventTypes]atomic.Uint64
	tracer *Tracer

	// Span state (Config.Spans): per-stage histograms, the per-bucket
	// contention table (int32 -> *contentionCell), the structural lock's
	// cell, the slow-op flight recorder, the span pool and the adaptive
	// threshold state.
	stages       [numStages]Histogram
	cont         sync.Map
	structCell   contentionCell
	flight       *flightRecorder
	spanPool     sync.Pool
	spanFinishes [numOps]atomic.Uint64
	slowCutoff   [numOps]atomic.Int64

	stateMu sync.Mutex
	stateFn func() State
}

// New returns an Observer with the given configuration.
func New(cfg Config) *Observer {
	if cfg.TraceDepth <= 0 {
		cfg.TraceDepth = 4096
	}
	if cfg.SlowOpDepth <= 0 {
		cfg.SlowOpDepth = 64
	}
	return &Observer{cfg: cfg, tracer: NewTracer(cfg.TraceDepth), flight: newFlightRecorder(cfg.SlowOpDepth)}
}

// RecordOp adds one latency sample for op.
func (o *Observer) RecordOp(op Op, d time.Duration) {
	if o == nil {
		return
	}
	o.ops[op].Record(d)
}

// Op returns the histogram of op (nil on a nil observer).
func (o *Observer) Op(op Op) *Histogram {
	if o == nil {
		return nil
	}
	return &o.ops[op]
}

// highFrequency reports whether an event type is per-access traffic
// rather than a structural transition.
func highFrequency(t EventType) bool {
	return t == EvCacheHit || t == EvCacheMiss || t == EvCacheEvict || t == EvPageRead || t == EvWALAppend
}

// Emit counts the event and, unless it is high-frequency traffic with
// TraceIO off, appends it to the ring.
func (o *Observer) Emit(e Event) {
	if o == nil {
		return
	}
	o.events[e.Type].Add(1)
	if highFrequency(e.Type) && !o.cfg.TraceIO {
		return
	}
	o.tracer.Append(e)
}

// EventCount returns the total number of events of type t ever emitted
// (independent of ring eviction).
func (o *Observer) EventCount(t EventType) uint64 {
	if o == nil {
		return 0
	}
	return o.events[t].Load()
}

// Events returns the event ring (nil on a nil observer).
func (o *Observer) Events() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// SetStateFunc installs the structure-snapshot provider (the public File
// wires its Stats here when the observer is attached).
func (o *Observer) SetStateFunc(fn func() State) {
	if o == nil {
		return
	}
	o.stateMu.Lock()
	o.stateFn = fn
	o.stateMu.Unlock()
}

// State returns the current structure snapshot, or the zero State when no
// provider is installed.
func (o *Observer) State() State {
	if o == nil {
		return State{}
	}
	o.stateMu.Lock()
	fn := o.stateFn
	o.stateMu.Unlock()
	if fn == nil {
		return State{}
	}
	return fn()
}

// ResetCounters zeroes the latency histograms (whole-op and per-stage),
// event totals, the contention table and the adaptive slow-op state (the
// event ring, the flight recorder and their sequence numbers are
// preserved, so tailing consumers see no gap). Useful around a measured
// workload phase.
func (o *Observer) ResetCounters() {
	if o == nil {
		return
	}
	for i := range o.ops {
		o.ops[i].reset()
	}
	for i := range o.events {
		o.events[i].Store(0)
	}
	for i := range o.stages {
		o.stages[i].reset()
	}
	o.cont.Range(func(key, _ any) bool {
		o.cont.Delete(key)
		return true
	})
	o.structCell.wait.Store(0)
	o.structCell.hold.Store(0)
	o.structCell.count.Store(0)
	for i := range o.spanFinishes {
		o.spanFinishes[i].Store(0)
		o.slowCutoff[i].Store(0)
	}
}

// Hook is the attachment point instrumented components share: one atomic
// pointer, nil when observability is off. Methods are safe on a nil *Hook
// (always-off), so plumbing can pass hooks optionally.
type Hook struct {
	p atomic.Pointer[Observer]
}

// Set attaches o (nil detaches).
func (h *Hook) Set(o *Observer) {
	if h == nil {
		return
	}
	h.p.Store(o)
}

// Observer returns the attached observer, or nil. This is the hot-path
// guard: one atomic load, no allocation.
func (h *Hook) Observer() *Observer {
	if h == nil {
		return nil
	}
	return h.p.Load()
}

// Enabled reports whether an observer is attached.
func (h *Hook) Enabled() bool { return h.Observer() != nil }
