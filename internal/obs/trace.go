package obs

import (
	"fmt"
	"sync"
)

// EventType enumerates the structural events the tracer records.
type EventType uint8

const (
	// EvSplit is a bucket split that appended a new bucket.
	EvSplit EventType = iota
	// EvRedistribution is an overflow absorbed by shifting keys into an
	// existing neighbour bucket.
	EvRedistribution
	// EvMerge is a bucket merge under deletions (sibling, guaranteed or
	// rotation policy).
	EvMerge
	// EvBorrow is an underflow resolved by borrowing keys from a
	// neighbour (THCL's guaranteed-load rule).
	EvBorrow
	// EvNilAlloc is the basic method's allocation of a bucket for a nil
	// leaf on first insertion into its key range.
	EvNilAlloc
	// EvPageSplit is a trie page split (MLTH).
	EvPageSplit
	// EvPageRead is a non-root trie page access (MLTH).
	EvPageRead
	// EvCacheHit is a buffer-pool read served from memory.
	EvCacheHit
	// EvCacheMiss is a buffer-pool read forwarded to the store.
	EvCacheMiss
	// EvCacheEvict is a buffer-pool frame eviction (CLOCK second chance
	// exhausted or LRU tail dropped).
	EvCacheEvict
	// EvFault is an injected storage fault tripping (FaultStore).
	EvFault
	// EvRecovery is a trie reconstruction from bucket bounds (TOR83).
	EvRecovery
	// EvCorrupt is slot corruption: injected (FaultStore corrupt modes, a
	// CrashStore power cut tearing an in-flight write) or detected (a
	// checksum failure surfacing as a CorruptError during salvage).
	EvCorrupt
	// EvQuarantine is an unreadable bucket moved to the quarantine file
	// and its slot cleared (File.Scrub, thcheck -repair).
	EvQuarantine
	// EvWALAppend is a record appended to the write-ahead log
	// (high-frequency: counted always, ring-recorded only with TraceIO).
	EvWALAppend
	// EvWALFsync is a group-commit fsync of the log; Addr carries the
	// number of records the fsync made durable (the commit group size).
	EvWALFsync
	// EvCheckpoint is a checkpoint folding the log into bucket pages and
	// truncating it; Addr carries the records folded.
	EvCheckpoint
	// EvWALReplay is a log replay on open; Addr carries the records
	// replayed, Detail reports a torn tail when one was truncated.
	EvWALReplay

	numEventTypes
)

var eventNames = [numEventTypes]string{
	EvSplit:          "split",
	EvRedistribution: "redistribution",
	EvMerge:          "merge",
	EvBorrow:         "borrow",
	EvNilAlloc:       "nil_alloc",
	EvPageSplit:      "page_split",
	EvPageRead:       "page_read",
	EvCacheHit:       "cache_hit",
	EvCacheMiss:      "cache_miss",
	EvCacheEvict:     "cache_evict",
	EvFault:          "fault",
	EvRecovery:       "recovery",
	EvCorrupt:        "corrupt",
	EvQuarantine:     "quarantine",
	EvWALAppend:      "wal_append",
	EvWALFsync:       "wal_fsync",
	EvCheckpoint:     "checkpoint",
	EvWALReplay:      "wal_replay",
}

func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return fmt.Sprintf("EventType(%d)", int(t))
}

// MarshalText renders the type name (so events serialize readably).
func (t EventType) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText parses a type name (the inverse of MarshalText).
func (t *EventType) UnmarshalText(b []byte) error {
	for i, name := range eventNames {
		if name == string(b) {
			*t = EventType(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event type %q", b)
}

// EventTypes enumerates every event type in declaration order.
func EventTypes() []EventType {
	out := make([]EventType, numEventTypes)
	for i := range out {
		out[i] = EventType(i)
	}
	return out
}

// Event is one structural event plus the state of the structure that
// triggered it. Addr/Addr2 identify the buckets (or pages) involved;
// Keys/Buckets/TrieCells snapshot the cheap O(1) structure figures at
// emission time, so a trace replays the file's trajectory.
type Event struct {
	Seq       uint64    `json:"seq"`
	Type      EventType `json:"type"`
	Addr      int32     `json:"addr"`
	Addr2     int32     `json:"addr2,omitempty"`
	Op        Op        `json:"op,omitempty"`
	Keys      int       `json:"keys,omitempty"`
	Buckets   int       `json:"buckets,omitempty"`
	TrieCells int       `json:"cells,omitempty"`
	Detail    string    `json:"detail,omitempty"`
}

func (e Event) String() string {
	s := fmt.Sprintf("#%d %s addr=%d", e.Seq, e.Type, e.Addr)
	if e.Addr2 != 0 {
		s += fmt.Sprintf(" addr2=%d", e.Addr2)
	}
	if e.Type == EvFault {
		s += fmt.Sprintf(" op=%s", e.Op)
	}
	if e.Keys != 0 || e.Buckets != 0 {
		s += fmt.Sprintf(" keys=%d buckets=%d cells=%d", e.Keys, e.Buckets, e.TrieCells)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Tracer is a bounded ring buffer of events. Appends assign a global
// sequence number; once the ring wraps, the oldest events are dropped but
// the sequence keeps counting, so consumers can detect gaps.
type Tracer struct {
	mu  sync.Mutex
	buf []Event
	// next is the sequence number of the next event (== total appended).
	next uint64
}

// NewTracer returns a tracer keeping the most recent n events (n >= 1).
func NewTracer(n int) *Tracer {
	if n < 1 {
		n = 1
	}
	return &Tracer{buf: make([]Event, n)}
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int { return len(t.buf) }

// Append records e, assigning its sequence number, and returns it.
func (t *Tracer) Append(e Event) uint64 {
	t.mu.Lock()
	seq := t.next
	e.Seq = seq
	t.buf[seq%uint64(len(t.buf))] = e
	t.next = seq + 1
	t.mu.Unlock()
	return seq
}

// Total returns the number of events ever appended.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Dropped returns how many events the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next > uint64(len(t.buf)) {
		return t.next - uint64(len(t.buf))
	}
	return 0
}

// Snapshot returns the retained events, oldest first.
func (t *Tracer) Snapshot() []Event { return t.Since(0) }

// Since returns the retained events with Seq >= seq, oldest first. Passing
// the previous call's next-sequence (last Seq + 1) tails the stream.
func (t *Tracer) Since(seq uint64) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	lo := uint64(0)
	if t.next > uint64(len(t.buf)) {
		lo = t.next - uint64(len(t.buf))
	}
	if seq > lo {
		lo = seq
	}
	if lo >= t.next {
		return nil
	}
	out := make([]Event, 0, t.next-lo)
	for s := lo; s < t.next; s++ {
		out = append(out, t.buf[s%uint64(len(t.buf))])
	}
	return out
}
