package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one timed phase inside an instrumented operation. The whole-
// op histograms say *that* p99 regressed; the stage histograms say *where*
// the time went: searching the trie, waiting for (or holding) a bucket
// latch or the structural lock, probing the buffer pool, moving buckets
// through the store, or doing split/merge/redistribution work.
type Stage uint8

const (
	// StageTrieSearch is the in-memory access computation: the trie (or
	// arena) search, including MLTH page traversal.
	StageTrieSearch Stage = iota
	// StageFileLock is the wait for the public file lock.
	StageFileLock
	// StageLatchWait is the wait to acquire a bucket latch.
	StageLatchWait
	// StageLatchHold is time holding a bucket latch not attributed to a
	// finer stage (store I/O under the latch reports as its own stage).
	StageLatchHold
	// StageStructWait is the wait to acquire the structural lock.
	StageStructWait
	// StageStructHold is time under the structural lock not attributed to
	// a finer stage.
	StageStructHold
	// StageSubtreeWait is the wait to acquire a subtree stripe lock.
	StageSubtreeWait
	// StageSubtreeHold is time holding a subtree stripe lock not
	// attributed to a finer stage.
	StageSubtreeHold
	// StageCacheProbe is a bucket view served from a resident pool frame.
	StageCacheProbe
	// StageStoreRead is a bucket read that reached the store.
	StageStoreRead
	// StageStoreWrite is a bucket write to the store.
	StageStoreWrite
	// StageSplit is bucket split work (store phase and trie flip).
	StageSplit
	// StageMerge is deletion maintenance: merge/borrow probes and actions.
	StageMerge
	// StageRedistribute is a split resolved by shifting keys into an
	// existing neighbour bucket.
	StageRedistribute
	// StageWALAppend is framing and appending a record to the write-ahead
	// log device (buffered; durability comes from the fsync stage).
	StageWALAppend
	// StageWALFsync is the committer goroutine's log fsync. It is recorded
	// from the committer via Stage().Record, not span marks: the fsync is
	// shared by every operation in the commit group, so charging it to one
	// op's span would double count.
	StageWALFsync
	// StageCommitWait is an operation's wait for the group committer to
	// report its record durable — the rendezvous where N in-flight writes
	// share one fsync.
	StageCommitWait
	// StageOther is the residual the explicit marks did not claim.
	StageOther

	numStages
)

var stageNames = [numStages]string{
	StageTrieSearch:   "trie_search",
	StageFileLock:     "file_lock",
	StageLatchWait:    "latch_wait",
	StageLatchHold:    "latch_hold",
	StageStructWait:   "struct_wait",
	StageStructHold:   "struct_hold",
	StageSubtreeWait:  "subtree_wait",
	StageSubtreeHold:  "subtree_hold",
	StageCacheProbe:   "cache_probe",
	StageStoreRead:    "store_read",
	StageStoreWrite:   "store_write",
	StageSplit:        "split",
	StageMerge:        "merge",
	StageRedistribute: "redistribute",
	StageWALAppend:    "wal_append",
	StageWALFsync:     "wal_fsync",
	StageCommitWait:   "commit_wait",
	StageOther:        "other",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// MarshalText renders the stage name.
func (s Stage) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Stages enumerates every stage in declaration order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// maxHoldDepth bounds the lock-nesting a span tracks: the deepest legal
// nesting the lockorder analyzer admits is subtree stripes (up to three —
// a merge spans both in-order neighbours) above one bucket latch above the
// trie flip lock; one spare guards against future layers.
const maxHoldDepth = 6

// holdFrame is one lock acquisition a span is currently inside. Times are
// nanoseconds elapsed since the span started (the span reads the wall
// clock once, at StartSpan; everything after is time.Since arithmetic,
// which costs one monotonic clock read instead of time.Now's two).
type holdFrame struct {
	addr     int32 // bucket address, or -1 for the structural lock
	acquired int64 // ns since span start when the lock was acquired
	wait     int64 // ns spent acquiring
}

// Span is the per-operation stage accounting one instrumented call carries
// through the layers. Attribution is sequential-mark: every Mark (and
// BeginHold/EndHold) reads the clock once and charges the interval since
// the previous mark to the named stage, so the stages of a finished span
// sum to its total — nothing is double counted, and what no mark claims
// lands in StageOther.
//
// A nil *Span is valid and free: every method no-ops, so engine code takes
// a span parameter unconditionally and the uninstrumented path pays only
// the nil checks.
//
// Spans are pooled: obtain one with Observer.StartSpan, finish it with
// Observer.FinishSpan (deferred, so every return path ends the span — the
// obsop analyzer enforces this), and do not retain it afterwards.
type Span struct {
	op      Op
	o       *Observer
	start   time.Time
	last    int64            // ns elapsed since start at the previous mark
	touched uint32           // bitmask of stages charged (numStages <= 32)
	stages  [numStages]int64 // ns charged per stage
	holds   [maxHoldDepth]holdFrame
	nholds  int
	// worst latch wait observed (for the flight record's hot-bucket hint)
	worstAddr int32
	worstWait int64
}

// elapsed returns nanoseconds since the span started: the one clock read
// every mark performs. time.Since on a monotonic time.Time compiles to a
// single runtime nanotime call, measurably cheaper than time.Now (which
// also reads the wall clock).
func (sp *Span) elapsed() int64 { return int64(time.Since(sp.start)) }

// Op returns the operation the span times.
func (sp *Span) Op() Op {
	if sp == nil {
		return 0
	}
	return sp.op
}

// Observer returns the observer the span reports to (nil on a nil span).
// Batch fan-out workers use it to open LatchTimers, which record into the
// same contention table.
func (sp *Span) Observer() *Observer {
	if sp == nil {
		return nil
	}
	return sp.o
}

// Mark charges the interval since the previous mark to stage and returns
// it. One clock read; nil-safe.
func (sp *Span) Mark(stage Stage) time.Duration {
	if sp == nil {
		return 0
	}
	el := sp.elapsed()
	d := el - sp.last
	sp.stages[stage] += d
	sp.touched |= 1 << stage
	sp.last = el
	return time.Duration(d)
}

// Add charges an externally measured duration to stage without reading
// the clock (used when a component timed the interval itself).
func (sp *Span) Add(stage Stage, d time.Duration) {
	if sp == nil {
		return
	}
	sp.stages[stage] += int64(d)
	sp.touched |= 1 << stage
}

// BeginHold records a lock acquisition that just completed: the interval
// since the previous mark (the acquire wait) is charged to waitStage, and
// a hold frame opens for the matching EndHold. addr is the latched bucket,
// or -1 for the structural lock. Call it immediately after Lock returns.
func (sp *Span) BeginHold(addr int32, waitStage Stage) {
	if sp == nil {
		return
	}
	el := sp.elapsed()
	wait := el - sp.last
	sp.stages[waitStage] += wait
	sp.touched |= 1 << waitStage
	sp.last = el
	if sp.nholds < maxHoldDepth {
		sp.holds[sp.nholds] = holdFrame{addr: addr, acquired: el, wait: wait}
		sp.nholds++
	}
	if addr >= 0 && wait > sp.worstWait {
		sp.worstAddr, sp.worstWait = addr, wait
	}
}

// EndHold closes the innermost hold frame: the interval since the previous
// mark (hold time not claimed by finer stages) is charged to holdStage,
// and the full wall occupancy of the lock — acquisition to now, interior
// stages included — is recorded in the observer's contention table. Call
// it immediately after Unlock.
func (sp *Span) EndHold(holdStage Stage) {
	if sp == nil {
		return
	}
	el := sp.elapsed()
	sp.stages[holdStage] += el - sp.last
	sp.touched |= 1 << holdStage
	sp.last = el
	if sp.nholds == 0 {
		return
	}
	sp.nholds--
	f := sp.holds[sp.nholds]
	sp.o.RecordContention(f.addr, time.Duration(f.wait), time.Duration(el-f.acquired))
}

// contentionCell accumulates one lock's totals in the contention table.
type contentionCell struct {
	wait  atomic.Int64
	hold  atomic.Int64
	count atomic.Int64
}

// StructLockAddr is the pseudo-address keying the engine's global
// structural serialization point — since the subtree sharding, the trie
// flip lock — in the contention accounting (real bucket addresses are
// non-negative).
const StructLockAddr int32 = -1

// structAddr keys the structural lock in the contention accounting.
const structAddr = StructLockAddr

// stripeAddrBase is where the subtree stripe pseudo-addresses start:
// stripe k is recorded under -2-k, below the structural pseudo-address.
const stripeAddrBase int32 = -2

// StripeAddr returns the contention-table pseudo-address of subtree
// stripe k.
func StripeAddr(k int) int32 { return stripeAddrBase - int32(k) }

// IsStripeAddr reports whether addr is a subtree stripe pseudo-address.
func IsStripeAddr(addr int32) bool { return addr <= stripeAddrBase }

// StripeIndex recovers the stripe index from its pseudo-address.
func StripeIndex(addr int32) int { return int(stripeAddrBase - addr) }

// RecordContention adds one lock acquisition to the contention table:
// wait is the acquire latency, hold the wall occupancy. addr -1 is the
// structural (flip) lock; -2-k is subtree stripe k. Safe for concurrent
// use (the batch fan-out workers record directly); a no-op when spans are
// off.
func (o *Observer) RecordContention(addr int32, wait, hold time.Duration) {
	if o == nil || !o.cfg.Spans {
		return
	}
	var c *contentionCell
	if addr == structAddr {
		c = &o.structCell
	} else {
		v, ok := o.cont.Load(addr)
		if !ok {
			v, _ = o.cont.LoadOrStore(addr, &contentionCell{})
		}
		c = v.(*contentionCell)
	}
	c.wait.Add(int64(wait))
	c.hold.Add(int64(hold))
	c.count.Add(1)
}

// LatchTimer times one lock acquisition outside any span — the batch
// fan-out workers, which run in parallel and therefore cannot share their
// batch's span marks. It feeds only the contention table. The zero value
// (spans off) no-ops. Deterministic packages (core) use it instead of
// reading the clock themselves.
type LatchTimer struct {
	o    *Observer
	addr int32
	t0   time.Time
	t1   time.Time
}

// StartLatch opens a latch timer for bucket addr (-1 = structural lock).
// Call before Lock.
func (o *Observer) StartLatch(addr int32) LatchTimer {
	if o == nil || !o.cfg.Spans {
		return LatchTimer{}
	}
	return LatchTimer{o: o, addr: addr, t0: time.Now()}
}

// Acquired marks the wait-to-hold boundary. Call right after Lock returns.
func (lt *LatchTimer) Acquired() {
	if lt.o != nil {
		lt.t1 = time.Now()
	}
}

// Release records the acquisition in the contention table. Call right
// after Unlock.
func (lt *LatchTimer) Release() {
	if lt.o != nil {
		lt.o.RecordContention(lt.addr, lt.t1.Sub(lt.t0), time.Since(lt.t1))
	}
}

// SpansEnabled reports whether stage-level span tracing is on.
func (o *Observer) SpansEnabled() bool { return o != nil && o.cfg.Spans }

// StartSpan returns a pooled span for op, or nil when the observer is nil
// or spans are off (Config.Spans). Pair with a deferred FinishSpan.
func (o *Observer) StartSpan(op Op) *Span {
	if o == nil || !o.cfg.Spans {
		return nil
	}
	sp, _ := o.spanPool.Get().(*Span)
	if sp == nil {
		sp = &Span{}
	}
	// Pooled spans return with their stage array already zeroed (FinishSpan
	// clears exactly the touched entries), so the reset here is scalar-only
	// — no 100-byte struct copy on the hot path.
	sp.op, sp.o = op, o
	sp.last, sp.touched, sp.nholds = 0, 0, 0
	sp.worstAddr, sp.worstWait = -1, 0
	sp.start = time.Now()
	return sp
}

// FinishSpan closes the span: the residual since the last mark is charged
// to StageOther, the total is recorded as the op's latency sample, each
// touched stage records one sample in its histogram, and — when the total
// clears the slow-op threshold — the full breakdown is captured in the
// flight recorder. The span returns to the pool; do not use it afterwards.
func (o *Observer) FinishSpan(sp *Span) {
	if o == nil || sp == nil {
		return
	}
	el := sp.elapsed()
	if res := el - sp.last; res > 0 {
		sp.stages[StageOther] += res
		sp.touched |= 1 << StageOther
	}
	total := time.Duration(el)
	o.ops[sp.op].Record(total)
	for m := sp.touched; m != 0; m &= m - 1 {
		i := bits.TrailingZeros32(m)
		o.stages[i].Record(time.Duration(sp.stages[i]))
	}
	if total >= o.slowThreshold(sp.op) {
		o.flight.add(sp, total)
	}
	for m := sp.touched; m != 0; m &= m - 1 {
		sp.stages[bits.TrailingZeros32(m)] = 0
	}
	o.spanPool.Put(sp)
}

// Stage returns the histogram of stage (nil on a nil observer).
func (o *Observer) Stage(s Stage) *Histogram {
	if o == nil {
		return nil
	}
	return &o.stages[s]
}

const (
	// adaptiveEvery is how often (in finished spans per op) the adaptive
	// slow-op threshold re-derives the op's p99.
	adaptiveEvery = 256
	// adaptiveMin is the sample count before the adaptive threshold arms;
	// until then nothing is considered slow.
	adaptiveMin = 256
)

// slowThreshold returns the flight-recorder admission bound for op: the
// configured Config.SlowOp when set, else a rolling estimate of the op's
// p99 (recomputed every adaptiveEvery finishes, armed after adaptiveMin).
func (o *Observer) slowThreshold(op Op) time.Duration {
	if o.cfg.SlowOp > 0 {
		return o.cfg.SlowOp
	}
	n := o.spanFinishes[op].Add(1)
	if n >= adaptiveMin && n%adaptiveEvery == 0 {
		o.slowCutoff[op].Store(int64(o.ops[op].Quantile(0.99)))
	}
	if t := o.slowCutoff[op].Load(); t > 0 {
		return time.Duration(t)
	}
	return time.Duration(1<<63 - 1) // not armed yet
}

// SpanRecord is one flight-recorder entry: the complete stage breakdown of
// an operation that exceeded the slow-op threshold.
type SpanRecord struct {
	Seq   uint64        `json:"seq"`
	Op    Op            `json:"op"`
	Total time.Duration `json:"total_ns"`
	// Stages holds the per-stage charge for every stage the op touched.
	Stages map[string]time.Duration `json:"stages"`
	// WorstAddr is the bucket whose latch the op waited longest on (-1
	// when it never waited), WorstWait that wait — the hot-bucket hint.
	WorstAddr int32         `json:"worst_addr"`
	WorstWait time.Duration `json:"worst_wait_ns"`
}

// flightRecorder is the bounded ring of slow-op span breakdowns.
type flightRecorder struct {
	mu    sync.Mutex
	buf   []SpanRecord
	next  int
	total uint64
}

func newFlightRecorder(depth int) *flightRecorder {
	return &flightRecorder{buf: make([]SpanRecord, 0, depth)}
}

func (fr *flightRecorder) add(sp *Span, total time.Duration) {
	stages := make(map[string]time.Duration, 4)
	for i := range sp.stages {
		if sp.stages[i] > 0 {
			stages[Stage(i).String()] = time.Duration(sp.stages[i])
		}
	}
	fr.mu.Lock()
	rec := SpanRecord{
		Seq: fr.total, Op: sp.op, Total: total, Stages: stages,
		WorstAddr: sp.worstAddr, WorstWait: time.Duration(sp.worstWait),
	}
	fr.total++
	if len(fr.buf) < cap(fr.buf) {
		fr.buf = append(fr.buf, rec)
	} else {
		fr.buf[fr.next] = rec
		fr.next++
		if fr.next == len(fr.buf) {
			fr.next = 0
		}
	}
	fr.mu.Unlock()
}

// records returns the retained slow ops, oldest first.
func (fr *flightRecorder) records() []SpanRecord {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]SpanRecord, 0, len(fr.buf))
	out = append(out, fr.buf[fr.next:]...)
	out = append(out, fr.buf[:fr.next]...)
	return out
}

// count returns the lifetime number of slow ops recorded (ring eviction
// does not decrease it).
func (fr *flightRecorder) count() uint64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.total
}

// SlowOps returns the flight recorder's retained records, oldest first,
// and the lifetime total of slow ops captured.
func (o *Observer) SlowOps() ([]SpanRecord, uint64) {
	if o == nil {
		return nil, 0
	}
	return o.flight.records(), o.flight.count()
}

// BucketContention is one row of the contention table: the accumulated
// latch acquire wait and wall occupancy of a bucket (or, with Addr -1, the
// structural lock).
type BucketContention struct {
	Addr  int32         `json:"addr"`
	Wait  time.Duration `json:"wait_ns"`
	Hold  time.Duration `json:"hold_ns"`
	Count int64         `json:"count"`
}

// TopContended returns the k buckets with the largest accumulated latch
// wait, descending (ties broken by address for determinism across calls).
// Subtree stripe pseudo-addresses share the table but are excluded here;
// StripeContention reports them.
func (o *Observer) TopContended(k int) []BucketContention {
	if o == nil || k <= 0 {
		return nil
	}
	var rows []BucketContention
	o.cont.Range(func(key, value any) bool {
		addr := key.(int32)
		if addr < 0 {
			return true
		}
		c := value.(*contentionCell)
		rows = append(rows, BucketContention{
			Addr: addr, Wait: time.Duration(c.wait.Load()),
			Hold: time.Duration(c.hold.Load()), Count: c.count.Load(),
		})
		return true
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Wait != rows[j].Wait {
			return rows[i].Wait > rows[j].Wait
		}
		return rows[i].Addr < rows[j].Addr
	})
	if len(rows) > k {
		rows = rows[:k]
	}
	return rows
}

// StructuralContention returns the structural (flip) lock's accumulated
// wait and occupancy.
func (o *Observer) StructuralContention() BucketContention {
	if o == nil {
		return BucketContention{Addr: structAddr}
	}
	return BucketContention{
		Addr: structAddr, Wait: time.Duration(o.structCell.wait.Load()),
		Hold: time.Duration(o.structCell.hold.Load()), Count: o.structCell.count.Load(),
	}
}

// StripeContention returns the per-stripe wait/hold totals of the subtree
// lock table, ascending by stripe index. Addr carries the stripe index,
// not the pseudo-address.
func (o *Observer) StripeContention() []BucketContention {
	if o == nil {
		return nil
	}
	var rows []BucketContention
	o.cont.Range(func(key, value any) bool {
		addr := key.(int32)
		if !IsStripeAddr(addr) {
			return true
		}
		c := value.(*contentionCell)
		rows = append(rows, BucketContention{
			Addr: int32(StripeIndex(addr)), Wait: time.Duration(c.wait.Load()),
			Hold: time.Duration(c.hold.Load()), Count: c.count.Load(),
		})
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].Addr < rows[j].Addr })
	return rows
}
