package triehash

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"triehash/internal/workload"
)

func TestQuickstart(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Put("litwin", []byte("trie hashing")); err != nil {
		t.Fatal(err)
	}
	v, err := f.Get("litwin")
	if err != nil || string(v) != "trie hashing" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := f.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v", err)
	}
	ok, err := f.Has("litwin")
	if err != nil || !ok {
		t.Fatalf("Has = %v, %v", ok, err)
	}
	if err := f.Delete("litwin"); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete("litwin"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete: %v", err)
	}
}

func TestVariantsAndRange(t *testing.T) {
	for _, opts := range []Options{
		{BucketCapacity: 8},                                // THCL
		{BucketCapacity: 8, Variant: TH},                   // basic
		{BucketCapacity: 8, Variant: TH, PageCapacity: 16}, // MLTH
		{BucketCapacity: 8, Redistribution: RedistBoth},    // THCL + redistribution
		{BucketCapacity: 8, SplitPos: 4, BoundPos: 5},      // deterministic
		{BucketCapacity: 8, Binary: true},                  // binary keys
	} {
		opts := opts
		t.Run(fmt.Sprintf("%+v", opts), func(t *testing.T) {
			f, err := Create(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ks := workload.Uniform(11, 1000, 3, 9)
			for i, k := range ks {
				if err := f.Put(k, []byte(fmt.Sprint(i))); err != nil {
					t.Fatalf("Put(%q): %v", k, err)
				}
			}
			if f.Len() != len(ks) {
				t.Fatalf("Len = %d", f.Len())
			}
			sorted := workload.Ascending(ks)
			var got []string
			if err := f.Range(sorted[100], sorted[200], func(k string, _ []byte) bool {
				got = append(got, k)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			want := sorted[100:201]
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("range returned %d keys, want %d", len(got), len(want))
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			st := f.Stats()
			if st.Keys != len(ks) || st.Load <= 0 || st.Buckets == 0 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

func TestMultilevelVariants(t *testing.T) {
	// Both variants page; single-level-only features are rejected.
	if _, err := Create(Options{BucketCapacity: 8, PageCapacity: 16}); err != nil {
		t.Fatalf("MLTH with THCL: %v", err)
	}
	if _, err := Create(Options{BucketCapacity: 8, Variant: TH, PageCapacity: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(Options{BucketCapacity: 8, PageCapacity: 16, Redistribution: RedistBoth}); err == nil {
		t.Fatal("multilevel redistribution accepted")
	}
	if _, err := Create(Options{BucketCapacity: 8, Variant: TH, PageCapacity: 16, RotationMerges: true}); err == nil {
		t.Fatal("multilevel rotation merges accepted")
	}
}

// TestMultilevelCompactTHCL: the paper's future-work combination through
// the public API — a compact, 100%-loaded file with a paged trie.
func TestMultilevelCompactTHCL(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 10, SplitPos: 10, PageCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, k := range workload.Ascending(workload.Uniform(23, 3000, 3, 9)) {
		if err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.Load < 0.99 {
		t.Fatalf("multilevel compact load %.3f", st.Load)
	}
	if st.Levels < 2 {
		t.Fatalf("levels = %d", st.Levels)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentRoundTrip(t *testing.T) {
	for _, opts := range []Options{
		{BucketCapacity: 8},
		{BucketCapacity: 8, Variant: TH, PageCapacity: 12},
	} {
		opts := opts
		t.Run(fmt.Sprintf("pages=%d", opts.PageCapacity), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "db")
			f, err := CreateAt(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			ks := workload.Uniform(12, 400, 3, 9)
			for _, k := range ks {
				if err := f.Put(k, []byte("v:"+k)); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			// Operations on a closed file fail cleanly.
			if err := f.Put("x", nil); !errors.Is(err, ErrClosed) {
				t.Fatalf("put after close: %v", err)
			}
			if _, err := f.Get("x"); !errors.Is(err, ErrClosed) {
				t.Fatalf("get after close: %v", err)
			}

			g, err := OpenAt(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			if g.Len() != len(ks) {
				t.Fatalf("reopened Len = %d, want %d", g.Len(), len(ks))
			}
			for _, k := range ks {
				v, err := g.Get(k)
				if err != nil || string(v) != "v:"+k {
					t.Fatalf("reopened Get(%q) = %q, %v", k, v, err)
				}
			}
			// Still writable after reopen.
			if err := g.Put("zz-after-reopen", []byte("1")); err != nil {
				t.Fatal(err)
			}
			if err := g.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOpenAtErrors(t *testing.T) {
	if _, err := OpenAt(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ks := workload.Uniform(13, 2000, 3, 9)
	for _, k := range ks[:1000] {
		if err := f.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := ks[rng.Intn(1000)]
				if v, err := f.Get(k); err != nil || string(v) != k {
					errs <- fmt.Errorf("Get(%q) = %q, %v", k, v, err)
					return
				}
			}
		}(int64(r))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, k := range ks[1000:] {
			if err := f.Put(k, []byte(k)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if f.Len() != len(ks) {
		t.Fatalf("Len = %d, want %d", f.Len(), len(ks))
	}
}

func TestCompactBulkLoad(t *testing.T) {
	// The headline THCL capability through the public API: a compact,
	// 100%-loaded file from sorted input.
	ks := workload.Ascending(workload.Uniform(14, 2000, 3, 9))
	f, err := Create(Options{BucketCapacity: 10, SplitPos: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, k := range ks {
		if err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.Load < 0.99 {
		t.Fatalf("compact load %.3f, want ~1.0", st.Load)
	}
}

func TestStatsAndIOCounters(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ks := workload.Uniform(15, 500, 3, 9)
	for _, k := range ks {
		f.Put(k, nil)
	}
	f.ResetIOCounters()
	for _, k := range ks[:100] {
		if _, err := f.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.IO.Reads != 100 || st.IO.Writes != 0 {
		t.Fatalf("IO after 100 searches: %+v (the paper's 1 access/search)", st.IO)
	}
	if st.TrieBytes != st.TrieCells*6 {
		t.Fatalf("TrieBytes %d, cells %d", st.TrieBytes, st.TrieCells)
	}
}

func TestOrderedIteration(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 4, Variant: TH})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, w := range workload.KnuthWords {
		f.Put(w, nil)
	}
	var got []string
	f.Range("a", "", func(k string, _ []byte) bool { got = append(got, k); return true })
	if !sort.StringsAreSorted(got) || len(got) != 31 {
		t.Fatalf("full scan: %v", got)
	}
}

func TestCursor(t *testing.T) {
	for _, opts := range []Options{
		{BucketCapacity: 8},
		{BucketCapacity: 8, Variant: TH, PageCapacity: 16},
	} {
		opts := opts
		t.Run(fmt.Sprintf("pages=%d", opts.PageCapacity), func(t *testing.T) {
			f, err := Create(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ks := workload.Uniform(21, 1000, 3, 9)
			for _, k := range ks {
				if err := f.Put(k, []byte("v:"+k)); err != nil {
					t.Fatal(err)
				}
			}
			sorted := workload.Ascending(ks)

			// Full scan through the cursor.
			cur := f.Seek(sorted[0], "")
			var got []string
			for {
				k, v, ok := cur.Next()
				if !ok {
					break
				}
				if string(v) != "v:"+k {
					t.Fatalf("cursor value mismatch for %q", k)
				}
				got = append(got, k)
			}
			if fmt.Sprint(got) != fmt.Sprint(sorted) {
				t.Fatalf("cursor scan: %d keys, want %d", len(got), len(sorted))
			}

			// Bounded scan from the middle.
			cur = f.Seek(sorted[300], sorted[450])
			got = nil
			for {
				k, _, ok := cur.Next()
				if !ok {
					break
				}
				got = append(got, k)
			}
			if fmt.Sprint(got) != fmt.Sprint(sorted[300:451]) {
				t.Fatalf("bounded cursor: %d keys, want %d", len(got), 151)
			}

			// Seeking between keys starts at the successor.
			cur = f.Seek(sorted[10]+"!", "")
			k, _, ok := cur.Next()
			if !ok || k != sorted[11] {
				t.Fatalf("between-keys seek gave %q, want %q", k, sorted[11])
			}

			// Seeking past the end yields nothing.
			cur = f.Seek("zzzzzzzzzzzz", "")
			if _, _, ok := cur.Next(); ok {
				t.Fatal("cursor past the end returned a record")
			}
		})
	}
}

func TestCursorEmptyFile(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, ok := f.Seek("a", "").Next(); ok {
		t.Fatal("cursor on empty file returned a record")
	}
}

// TestRecoverAt loses the metadata of a persistent file and rebuilds it
// from the bucket headers (the TOR83 recovery).
func TestRecoverAt(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	f, err := CreateAt(dir, Options{BucketCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.Uniform(31, 600, 3, 9)
	for _, k := range ks {
		if err := f.Put(k, []byte("v:"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash: metadata gone. OpenAt salvages automatically, taking the
	// bucket capacity from the bucket file's header hint.
	if err := os.Remove(filepath.Join(dir, "meta.th")); err != nil {
		t.Fatal(err)
	}
	s, err := OpenAt(dir)
	if err != nil {
		t.Fatalf("OpenAt auto-salvage: %v", err)
	}
	if s.Len() != len(ks) {
		t.Fatalf("auto-salvage kept %d keys, want %d", s.Len(), len(ks))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("auto-salvage invariants: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Lose the metadata again and exercise the explicit recovery path.
	if err := os.Remove(filepath.Join(dir, "meta.th")); err != nil {
		t.Fatal(err)
	}
	g, err := RecoverAt(dir, Options{BucketCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		if v, err := g.Get(k); err != nil || string(v) != "v:"+k {
			t.Fatalf("recovered Get(%q) = %q, %v", k, v, err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	// RecoverAt re-synced the metadata: a normal open works again.
	h, err := OpenAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Len() != len(ks) {
		t.Fatalf("reopened after recovery: %d keys, want %d", h.Len(), len(ks))
	}
}

// TestRecordSizeGuard: persistent files reject records that could not be
// guaranteed to fit a bucket slot, instead of failing mid-split.
func TestRecordSizeGuard(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	f, err := CreateAt(dir, Options{BucketCapacity: 4, SlotBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Put("small", []byte("fits")); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 512)
	if err := f.Put("big", big); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized Put: %v", err)
	}
	// The file remains fully usable and consistent.
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// In-memory files have no limit.
	m, err := Create(Options{BucketCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Put("big", big); err != nil {
		t.Fatalf("in-memory oversized Put: %v", err)
	}
}

// TestBinaryKeysPersistent: arbitrary binary keys round-trip through the
// persistent store and the cursor.
func TestBinaryKeysPersistent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	f, err := CreateAt(dir, Options{BucketCapacity: 8, Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := [][]byte{
		{0x00, 0x01},
		{0x00, 0xFF},
		{0x7F, 0x00, 0x01},
		{0xFF, 0xFE, 0xFD},
		{0x01},
		{0x80, 0x80, 0x80, 0x01},
	}
	for _, k := range keys {
		if err := f.Put(string(k), k); err != nil {
			t.Fatalf("Put(%x): %v", k, err)
		}
	}
	// Trailing zero bytes are rejected (indistinguishable from padding).
	if err := f.Put("\x01\x00", nil); err == nil {
		t.Fatal("trailing-zero key accepted")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := OpenAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, k := range keys {
		v, err := g.Get(string(k))
		if err != nil || string(v) != string(k) {
			t.Fatalf("Get(%x) = %x, %v", k, v, err)
		}
	}
	// Cursor iterates binary keys in byte order.
	cur := g.Seek(string([]byte{0x00}), "")
	prev := ""
	n := 0
	for {
		k, _, ok := cur.Next()
		if !ok {
			break
		}
		if prev != "" && k <= prev {
			t.Fatalf("binary cursor order violated")
		}
		prev = k
		n++
	}
	if n != len(keys) {
		t.Fatalf("cursor saw %d of %d binary keys", n, len(keys))
	}
}

// TestCacheFrames: the buffer pool absorbs repeat reads; the underlying
// transfer counters shrink accordingly.
func TestCacheFrames(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 20, CacheFrames: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ks := workload.Uniform(51, 2000, 4, 10)
	for _, k := range ks {
		if err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	f.ResetIOCounters()
	// Every bucket fits the pool: repeated reads cost no transfers once
	// warmed.
	for round := 0; round < 3; round++ {
		for _, k := range ks[:500] {
			if _, err := f.Get(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	reads := f.Stats().IO.Reads
	if reads != 0 {
		// The pool was warmed during the load phase (write-through
		// fills frames), so even the first round hits.
		t.Errorf("cached reads reached the store: %d transfers", reads)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Persistent + cached round-trips too.
	dir := filepath.Join(t.TempDir(), "db")
	g, err := CreateAt(dir, Options{BucketCapacity: 20, CacheFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks[:300] {
		if err := g.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	h, err := OpenAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for _, k := range ks[:300] {
		if v, err := h.Get(k); err != nil || string(v) != k {
			t.Fatalf("Get(%q) = %q, %v", k, v, err)
		}
	}
}

// TestBulkLoadFacade: the one-pass loader through the public API, both
// in-memory and persistent.
func TestBulkLoadFacade(t *testing.T) {
	ks := workload.Ascending(workload.Uniform(52, 3000, 3, 10))
	feeder := func() func() (string, []byte, bool) {
		i := 0
		return func() (string, []byte, bool) {
			if i >= len(ks) {
				return "", nil, false
			}
			k := ks[i]
			i++
			return k, []byte(k), true
		}
	}

	f, err := BulkLoad("", Options{BucketCapacity: 20}, 1.0, feeder())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if st := f.Stats(); st.Load < 0.999 || st.Keys != len(ks) {
		t.Fatalf("bulk stats: %+v", st)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "db")
	g, err := BulkLoad(dir, Options{BucketCapacity: 20}, 0.8, feeder())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	h, err := OpenAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Len() != len(ks) {
		t.Fatalf("persistent bulk load lost keys: %d", h.Len())
	}
	for _, k := range ks[:200] {
		if v, err := h.Get(k); err != nil || string(v) != k {
			t.Fatalf("Get(%q) = %q, %v", k, v, err)
		}
	}
}
