// Quickstart: create an in-memory trie-hashed file, store some records,
// look them up, scan a key range and inspect the statistics the paper's
// evaluation is stated in.
package main

import (
	"fmt"
	"log"

	"triehash"
)

func main() {
	f, err := triehash.Create(triehash.Options{BucketCapacity: 20})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// Insert a few records. Keys are ordinary strings; the trie
	// compares them one digit (byte) at a time.
	people := map[string]string{
		"litwin":       "trie hashing",
		"roussopoulos": "compact B-trees",
		"bayer":        "B-trees",
		"comer":        "the ubiquitous B-tree",
		"knuth":        "sorting and searching",
		"fredkin":      "trie memory",
	}
	for k, v := range people {
		if err := f.Put(k, []byte(v)); err != nil {
			log.Fatal(err)
		}
	}

	// Point lookup: with the trie in memory this costs one bucket read.
	v, err := f.Get("litwin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("litwin -> %s\n", v)

	// The file is key-ordered, so range scans are sequential.
	fmt.Println("\nauthors in [b, l]:")
	err = f.Range("b", "l", func(k string, v []byte) bool {
		fmt.Printf("  %-14s %s\n", k, v)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}

	// Deletion keeps the load guarantee of the controlled-load variant.
	if err := f.Delete("comer"); err != nil {
		log.Fatal(err)
	}

	st := f.Stats()
	fmt.Printf("\n%d records in %d buckets, load %.0f%%, trie %d cells (%d bytes)\n",
		st.Keys, st.Buckets, st.Load*100, st.TrieCells, st.TrieBytes)
}
