// Rangequery demonstrates the ordered-file property trie hashing keeps
// despite being a hashing method: logical paths partition the key space
// in order, so range queries cost one bucket read per qualifying bucket.
// It contrasts a well-loaded THCL file with a half-loaded one to show how
// the load factor drives range-scan cost — the efficiency argument the
// paper makes for compact files.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"triehash"
)

func buildFile(opts triehash.Options, keys []string) *triehash.File {
	f, err := triehash.Create(opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range keys {
		if err := f.Put(k, []byte(k)); err != nil {
			log.Fatal(err)
		}
	}
	return f
}

func main() {
	// A product-catalogue workload: composite "category/sku" keys, so
	// a range scan per category is the natural access path.
	rng := rand.New(rand.NewSource(7))
	categories := []string{"audio", "bike", "camp", "garden", "kitchen", "tools"}
	var keys []string
	for _, c := range categories {
		for i := 0; i < 3000; i++ {
			keys = append(keys, fmt.Sprintf("%s/%06d", c, rng.Intn(900000)))
		}
	}
	// The catalogue is loaded from a sorted dump (the common bulk-load
	// path), so the split policy decides the load factor directly.
	sort.Strings(keys)

	const b = 50
	// Compact load: split position at the top leaves every bucket full.
	compact := buildFile(triehash.Options{BucketCapacity: b, SplitPos: b}, keys)
	defer compact.Close()
	// Untuned deterministic middle splits: the B-tree-like 50%.
	half := buildFile(triehash.Options{BucketCapacity: b, SplitPos: b / 2, BoundPos: b/2 + 1}, keys)
	defer half.Close()

	fmt.Printf("%-28s %8s %8s %14s\n", "file", "load", "buckets", "reads/category")
	for _, v := range []struct {
		name string
		f    *triehash.File
	}{{"compact load (m=b)", compact}, {"untuned middle split", half}} {
		st := v.f.Stats()
		v.f.ResetIOCounters()
		total := 0
		for _, c := range categories {
			n := 0
			// Scan the whole category: from "audio/" to just below
			// the next category prefix ("audio0" > "audio/...").
			if err := v.f.Range(c+"/", c+"0", func(string, []byte) bool {
				n++
				return true
			}); err != nil {
				log.Fatal(err)
			}
			total += n
		}
		reads := v.f.Stats().IO.Reads
		fmt.Printf("%-28s %7.1f%% %8d %14.1f\n",
			v.name, st.Load*100, st.Buckets, float64(reads)/float64(len(categories)))
		_ = total
	}
	fmt.Println("\nhigher load => fewer buckets span a range => cheaper scans (Section 4 of the paper)")
}
