// Sortedload builds the paper's headline artifact: a compact file loaded
// to 100% from sorted input — the back-up / log-file / query-spool
// scenario of Section 4. Setting the split position to the bucket
// capacity makes every split leave the overflowing bucket full, and the
// controlled-load variant's shared leaves route all further ascending
// keys to the single open bucket.
//
// The file is persisted to a temporary directory and reopened read-only
// to show the full lifecycle.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"triehash"
)

func main() {
	dir, err := os.MkdirTemp("", "triehash-sortedload-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbdir := filepath.Join(dir, "db")

	// A monotone "log stream": sorted surrogate keys, as a nightly
	// back-up or a sorted join spool would produce.
	const n = 20000
	records := make([]string, n)
	for i := range records {
		records[i] = fmt.Sprintf("event-%08d", i)
	}
	sort.Strings(records)

	const b = 50
	// BulkLoad packs the sorted stream in one pass: 100% load and a
	// balanced trie, ~20x faster than per-record compact insertion
	// (which Options{SplitPos: b} would give).
	i := 0
	f, err := triehash.BulkLoad(dbdir, triehash.Options{BucketCapacity: b}, 1.0,
		func() (string, []byte, bool) {
			if i >= len(records) {
				return "", nil, false
			}
			k := records[i]
			i++
			return k, []byte("payload of " + k), true
		})
	if err != nil {
		log.Fatal(err)
	}
	st := f.Stats()
	fmt.Printf("loaded %d records into %d buckets: load %.1f%% (compact: the minimum is %d buckets)\n",
		st.Keys, st.Buckets, st.Load*100, (n+b-1)/b)
	fmt.Printf("trie: %d cells, %d bytes — %.1f bytes per bucket\n",
		st.TrieCells, st.TrieBytes, float64(st.TrieBytes)/float64(st.Buckets))
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen and serve: the compact file behaves like any other.
	g, err := triehash.OpenAt(dbdir)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	g.ResetIOCounters()
	probe := records[n/3]
	if _, err := g.Get(probe); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point lookup of %q after reopen: %d bucket read(s)\n", probe, g.Stats().IO.Reads)

	// Compact files make range scans maximally sequential: counting
	// qualifying buckets shows one read per b records.
	g.ResetIOCounters()
	count := 0
	if err := g.Range(records[1000], records[3999], func(string, []byte) bool {
		count++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range scan of %d records: %d bucket reads (~%d records/read)\n",
		count, g.Stats().IO.Reads, count/int(g.Stats().IO.Reads))
}
