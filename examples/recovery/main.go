// Recovery demonstrates the /TOR83/ reconstruction the paper's conclusion
// describes: every bucket's header stores its logical-path bound, so when
// the trie (kept in main memory and persisted as metadata) is lost — a
// crash before sync, a corrupted meta file — the whole access structure
// rebuilds from the buckets alone. The rebuilt trie is equivalent and
// usually better balanced than the one that was lost.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"triehash"
	"triehash/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "triehash-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbdir := filepath.Join(dir, "db")

	// Build a file whose trie is maximally skewed: a compact ascending
	// load produces a deep, degenerate access structure.
	const b = 20
	f, err := triehash.CreateAt(dbdir, triehash.Options{BucketCapacity: b, SplitPos: b})
	if err != nil {
		log.Fatal(err)
	}
	keys := workload.Ascending(workload.Uniform(7, 10000, 4, 12))
	for _, k := range keys {
		if err := f.Put(k, []byte("payload:"+k)); err != nil {
			log.Fatal(err)
		}
	}
	before := f.Stats()
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built: %d records, %d buckets (load %.0f%%), trie %d cells, depth %d\n",
		before.Keys, before.Buckets, before.Load*100, before.TrieCells, before.Depth)

	// The crash: the metadata (trie) is gone.
	if err := os.Remove(filepath.Join(dbdir, "meta.th")); err != nil {
		log.Fatal(err)
	}
	if _, err := triehash.OpenAt(dbdir); err != nil {
		fmt.Println("after crash, OpenAt fails as expected:", err)
	}

	// Rebuild from the bucket headers.
	g, err := triehash.RecoverAt(dbdir, triehash.Options{BucketCapacity: b})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	after := g.Stats()
	fmt.Printf("recovered: %d records, %d buckets, trie %d cells, depth %d\n",
		after.Keys, after.Buckets, after.TrieCells, after.Depth)
	fmt.Printf("depth %d -> %d: the rebuilt trie is better balanced (the TOR83 conjecture)\n",
		before.Depth, after.Depth)

	// Everything is still there.
	probe := keys[len(keys)/2]
	v, err := g.Get(probe)
	if err != nil || string(v) != "payload:"+probe {
		log.Fatalf("probe %q after recovery: %q, %v", probe, v, err)
	}
	if err := g.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all records intact, invariants hold")
}
