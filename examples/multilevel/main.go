// Multilevel demonstrates MLTH (Section 2.5): when the trie outgrows its
// page, it splits into a hierarchy. With the root page cached in memory, a
// two-level file serves any key search in exactly two disk accesses —
// one trie page plus one bucket — which is the paper's headline for very
// large files.
package main

import (
	"fmt"
	"log"

	"triehash"
	"triehash/internal/workload"
)

func main() {
	f, err := triehash.Create(triehash.Options{
		Variant:        triehash.TH,
		BucketCapacity: 20,
		PageCapacity:   256, // cells per trie page (~1.5 KB at 6 B/cell)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	keys := workload.EnglishLike(42, 60000)
	for _, k := range keys {
		if err := f.Put(k, nil); err != nil {
			log.Fatal(err)
		}
	}
	st := f.Stats()
	fmt.Printf("%d records, %d buckets (load %.0f%%)\n", st.Keys, st.Buckets, st.Load*100)
	fmt.Printf("trie: %d cells across %d pages in %d levels\n", st.TrieCells, st.Pages, st.Levels)

	// Measure the per-search cost over a probe set.
	f.ResetIOCounters()
	const probes = 5000
	for _, k := range keys[:probes] {
		if _, err := f.Get(k); err != nil {
			log.Fatal(err)
		}
	}
	st = f.Stats()
	fmt.Printf("%d searches: %d page reads + %d bucket reads = %.3f accesses/search\n",
		probes, st.PageReads, st.IO.Reads,
		float64(st.PageReads+st.IO.Reads)/probes)
	fmt.Println("(the paper: two accesses per search suffice for gigabyte files)")
}
