// Concurrent runs parallel readers against a writer on one file. The
// paper argues trie hashing suits concurrency because cells are only ever
// appended; this implementation serializes writers and lets readers share
// a lock, so lookups scale across cores while the writer streams inserts.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"triehash"
	"triehash/internal/workload"
)

func main() {
	f, err := triehash.Create(triehash.Options{BucketCapacity: 50})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	keys := workload.Uniform(99, 100000, 4, 12)
	const preloaded = 50000
	for _, k := range keys[:preloaded] {
		if err := f.Put(k, []byte(k)); err != nil {
			log.Fatal(err)
		}
	}

	var (
		wg      sync.WaitGroup
		lookups atomic.Int64
		stop    atomic.Bool
	)
	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := keys[rng.Intn(preloaded)]
				v, err := f.Get(k)
				if err != nil || string(v) != k {
					log.Fatalf("Get(%q) = %q, %v", k, v, err)
				}
				lookups.Add(1)
			}
		}(int64(r))
	}

	start := time.Now()
	for _, k := range keys[preloaded:] {
		if err := f.Put(k, []byte(k)); err != nil {
			log.Fatal(err)
		}
	}
	writerTime := time.Since(start)
	stop.Store(true)
	wg.Wait()

	st := f.Stats()
	fmt.Printf("writer inserted %d records in %v while %d readers did %d lookups\n",
		len(keys)-preloaded, writerTime.Round(time.Millisecond), readers, lookups.Load())
	fmt.Printf("final file: %d records, %d buckets, load %.0f%%, trie %d cells\n",
		st.Keys, st.Buckets, st.Load*100, st.TrieCells)
	if err := f.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("invariants hold after concurrent traffic")
}
