package triehash

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"triehash/internal/workload"
)

// buildDamagedDB creates a persistent database, closes it cleanly and
// returns its directory and key set.
func buildDamagedDB(t *testing.T, n int) (string, []string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	f, err := CreateAt(dir, Options{BucketCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.Uniform(99, n, 3, 9)
	for _, k := range ks {
		if err := f.Put(k, []byte("v:"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, ks
}

// TestOpenAtDamagedMeta drives OpenAt against every flavour of metadata
// damage: truncation, a flipped byte (the trailing CRC catches it) and a
// zero-length file. Each must fall back to salvage and reproduce every
// record.
func TestOpenAtDamagedMeta(t *testing.T) {
	damage := map[string]func(t *testing.T, path string){
		"truncated": func(t *testing.T, path string) {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, st.Size()/2); err != nil {
				t.Fatal(err)
			}
		},
		"bitflip": func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/3] ^= 0x10
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"zero-length": func(t *testing.T, path string) {
			if err := os.Truncate(path, 0); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, inflict := range damage {
		t.Run(name, func(t *testing.T) {
			dir, ks := buildDamagedDB(t, 300)
			inflict(t, filepath.Join(dir, "meta.th"))
			f, err := OpenAt(dir)
			if err != nil {
				t.Fatalf("OpenAt did not salvage: %v", err)
			}
			defer f.Close()
			if f.Len() != len(ks) {
				t.Fatalf("salvaged Len = %d, want %d", f.Len(), len(ks))
			}
			for _, k := range ks {
				v, err := f.Get(k)
				if err != nil || string(v) != "v:"+k {
					t.Fatalf("salvaged Get(%q) = %q, %v", k, v, err)
				}
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOpenAtDamagedBuckets verifies the bucket-file side: a flipped
// payload byte surfaces as ErrCorrupt on reads and is repaired by Scrub
// with the loss quarantined and reported; a zero-length bucket file
// leaves nothing to salvage from and must fail loudly.
func TestOpenAtDamagedBuckets(t *testing.T) {
	dir, ks := buildDamagedDB(t, 300)

	// Flip one payload byte in the first slot's record area (offset past
	// the 32-byte file header and the 9-byte slot header).
	bf, err := os.OpenFile(filepath.Join(dir, "buckets.th"), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var one [1]byte
	if _, err := bf.ReadAt(one[:], 60); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0x40
	if _, err := bf.WriteAt(one[:], 60); err != nil {
		t.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := OpenAt(dir)
	if err != nil {
		t.Fatalf("OpenAt with a damaged bucket must still open (metadata is intact): %v", err)
	}
	defer f.Close()

	// Some read hits the damaged slot and reports typed corruption.
	sawCorrupt := false
	for _, k := range ks {
		if _, err := f.Get(k); errors.Is(err, ErrCorrupt) {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Get(%q) = %v, matches ErrCorrupt but not *CorruptError", k, err)
			}
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("no read surfaced the flipped byte")
	}

	rep, err := f.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("Quarantined = %+v, want exactly the damaged slot", rep.Quarantined)
	}
	if !rep.Lost() || !rep.Quarantined[0].RangeKnown {
		t.Fatalf("report %+v: the lost key range must be known", rep)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("scrubbed file fails invariants: %v", err)
	}
	lost := 0
	for _, k := range ks {
		v, err := f.Get(k)
		switch {
		case err == nil:
			if string(v) != "v:"+k {
				t.Fatalf("surviving Get(%q) = %q", k, v)
			}
		case errors.Is(err, ErrNotFound):
			lost++
		default:
			t.Fatalf("Get(%q) after scrub: %v", k, err)
		}
	}
	if lost == 0 || lost > 8 {
		t.Fatalf("lost %d records, want 1..capacity (one bucket)", lost)
	}
	if got := len(ks) - lost; f.Len() != got {
		t.Fatalf("Len = %d, want %d", f.Len(), got)
	}

	// The quarantine file preserves the damaged bucket's bytes.
	entries, err := ReadQuarantine(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Reason == "" || len(entries[0].Raw) == 0 {
		t.Fatalf("quarantine entries = %+v, want one with reason and raw bytes", entries)
	}
	if entries[0].Addr != rep.Quarantined[0].Addr {
		t.Fatalf("quarantined addr %d, report says %d", entries[0].Addr, rep.Quarantined[0].Addr)
	}

	// A second scrub of the now-healthy file is a no-op.
	rep2, err := f.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Lost() {
		t.Fatalf("second scrub lost data: %+v", rep2)
	}

	// The file survives a close/reopen cycle after repair.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := OpenAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Len() != len(ks)-lost {
		t.Fatalf("reopened Len = %d, want %d", g.Len(), len(ks)-lost)
	}

	// With the bucket file gone to zero bytes there is nothing to rebuild
	// from: both the plain open and the salvage must fail.
	dir2, _ := buildDamagedDB(t, 50)
	if err := os.Truncate(filepath.Join(dir2, "buckets.th"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAt(dir2); err == nil {
		t.Fatal("OpenAt accepted a zero-length bucket file")
	}
	if err := os.Remove(filepath.Join(dir2, "meta.th")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAt(dir2); err == nil {
		t.Fatal("salvage of a zero-length bucket file succeeded")
	}
}
