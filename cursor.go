package triehash

// Cursor iterates the file's records in ascending key order, fetching one
// buffered batch of records at a time. Each refill observes the file's
// current state, so a cursor running concurrently with writers sees a
// weakly consistent sequence: keys are always delivered in order and at
// most once, but records inserted behind the cursor's position are not
// revisited.
type Cursor struct {
	f     *File
	to    string
	batch []kv
	idx   int
	next  string // start of the next refill; "" after exhaustion
	done  bool
}

type kv struct {
	key   string
	value []byte
}

// cursorBatch is the refill size: large enough to amortize the lock and
// leaf walk, small enough to keep memory flat on huge scans.
const cursorBatch = 128

// Seek returns a cursor positioned at the smallest key >= from. An empty
// to bounds the scan at the end of the file.
func (f *File) Seek(from, to string) *Cursor {
	return &Cursor{f: f, to: to, next: from}
}

// Next returns the next record in key order; ok is false when the scan is
// exhausted (or the file was closed mid-scan).
func (c *Cursor) Next() (key string, value []byte, ok bool) {
	if c.idx >= len(c.batch) {
		if c.done || !c.refill() {
			return "", nil, false
		}
	}
	r := c.batch[c.idx]
	c.idx++
	return r.key, r.value, true
}

// refill fetches the next batch starting at c.next.
func (c *Cursor) refill() bool {
	c.batch = c.batch[:0]
	c.idx = 0
	err := c.f.Range(c.next, c.to, func(k string, v []byte) bool {
		c.batch = append(c.batch, kv{k, v})
		return len(c.batch) < cursorBatch
	})
	if err != nil || len(c.batch) == 0 {
		c.done = true
		return false
	}
	if len(c.batch) < cursorBatch {
		c.done = true // the final batch; serve it, then stop
	} else {
		// The next refill starts just above the last delivered key:
		// appending the minimum digit forms the smallest string
		// strictly greater than it.
		c.next = c.batch[len(c.batch)-1].key + string(c.f.alpha.Min)
	}
	return true
}
